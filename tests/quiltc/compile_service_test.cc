#include "src/quiltc/compile_service.h"

#include <gtest/gtest.h>

#include <atomic>

#include "src/frontend/frontend.h"
#include "src/quiltc/compiler.h"

namespace quilt {
namespace {

// Movie-review-style workflow (Figure 3 shape): root fans out to three
// uploaders that all call compose-and-upload.
struct Workflow {
  CallGraph graph;
  std::map<std::string, SourceFunction> sources;
};

Workflow MovieReview(Lang lang = Lang::kRust, int upload_alpha = 1) {
  Workflow w;
  auto add = [&](const std::string& handle, std::vector<InvocationSite> sites) {
    w.graph.AddNode(handle, 0.1, 20);
    SourceFunction fn;
    fn.handle = handle;
    fn.lang = lang;
    fn.invocations = std::move(sites);
    w.sources[handle] = fn;
  };
  add("compose-review", {InvocationSite{"upload-user-id", true, false},
                         InvocationSite{"upload-rating", true, false},
                         InvocationSite{"upload-text", true, false}});
  add("upload-user-id", {InvocationSite{"compose-and-upload", false, false}});
  add("upload-rating", {InvocationSite{"compose-and-upload", false, false}});
  add("upload-text", {InvocationSite{"compose-and-upload", false, false}});
  add("compose-and-upload", {});
  auto edge = [&](const std::string& a, const std::string& b, CallType type, int alpha = 1) {
    EXPECT_TRUE(w.graph
                    .AddEdgeWithAlpha(w.graph.FindNode(a), w.graph.FindNode(b), 100, alpha, type)
                    .ok());
  };
  edge("compose-review", "upload-user-id", CallType::kAsync);
  edge("compose-review", "upload-rating", CallType::kAsync);
  edge("compose-review", "upload-text", CallType::kAsync, upload_alpha);
  edge("upload-user-id", "compose-and-upload", CallType::kSync);
  edge("upload-rating", "compose-and-upload", CallType::kSync);
  edge("upload-text", "compose-and-upload", CallType::kSync);
  return w;
}

// A two-group solution over the workflow: {root, the three uploaders} merged,
// compose-and-upload left as a single.
MergeSolution TwoGroupSolution(const CallGraph& graph) {
  MergeSolution solution;
  MergeGroup merged;
  merged.root = graph.FindNode("compose-review");
  merged.members = {graph.FindNode("compose-review"), graph.FindNode("upload-user-id"),
                    graph.FindNode("upload-rating"), graph.FindNode("upload-text")};
  solution.groups.push_back(merged);
  MergeGroup single;
  single.root = graph.FindNode("compose-and-upload");
  single.members = {single.root};
  solution.groups.push_back(single);
  return solution;
}

std::string RecordLines(const std::vector<CompileRecord>& records) {
  std::string out;
  for (const CompileRecord& r : records) {
    out += CompileRecordLine(r);
    out += "\n";
  }
  return out;
}

// --- Cache equivalence -----------------------------------------------------

TEST(CompileServiceTest, CachedMergeIsByteIdenticalToFresh) {
  Workflow w = MovieReview();
  CompileService service;
  const MergeSolution solution = FullMergeSolution(w.graph);

  CompileRecord fresh_record;
  Result<MergedArtifact> fresh =
      service.MergeGroup(w.graph, solution.groups[0], w.sources, &fresh_record);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  CompileRecord cached_record;
  Result<MergedArtifact> cached =
      service.MergeGroup(w.graph, solution.groups[0], w.sources, &cached_record);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();

  EXPECT_EQ(ArtifactSignature(*fresh), ArtifactSignature(*cached));
  EXPECT_EQ(CompileRecordLine(fresh_record), CompileRecordLine(cached_record));

  const CompileServiceStats stats = service.stats();
  EXPECT_EQ(stats.merges_built, 1);
  EXPECT_EQ(stats.artifact_hits, 1);
  EXPECT_EQ(stats.artifact_lookups, 2);
  // The cache hit was charged as incremental (~0) cost.
  EXPECT_GT(stats.modeled_cost_s, stats.charged_cost_s);
}

TEST(CompileServiceTest, CacheOnAndOffProduceIdenticalArtifactsAndRecords) {
  Workflow w = MovieReview();
  CompileServiceOptions cached_opts;
  CompileServiceOptions uncached_opts;
  uncached_opts.ir_cache = false;
  uncached_opts.artifact_cache = false;
  CompileService with_cache(cached_opts);
  CompileService without_cache(uncached_opts);

  const MergeSolution solution = TwoGroupSolution(w.graph);
  for (int round = 0; round < 2; ++round) {
    std::vector<CompileRecord> cached_records;
    std::vector<CompileRecord> uncached_records;
    Result<std::vector<MergedArtifact>> a =
        with_cache.MergeSolution(w.graph, solution, w.sources, &cached_records);
    Result<std::vector<MergedArtifact>> b =
        without_cache.MergeSolution(w.graph, solution, w.sources, &uncached_records);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(ArtifactSignature((*a)[i]), ArtifactSignature((*b)[i])) << "round " << round;
    }
    EXPECT_EQ(RecordLines(cached_records), RecordLines(uncached_records)) << "round " << round;
  }
  // The cached service did real work once; the uncached one every time.
  EXPECT_LT(with_cache.stats().frontend_compiles, without_cache.stats().frontend_compiles);
}

TEST(CompileServiceTest, SinglesHitTheArtifactCache) {
  Workflow w = MovieReview();
  CompileService service;
  Result<MergedArtifact> first = service.BuildSingleFunction(w.sources["upload-text"]);
  ASSERT_TRUE(first.ok());
  Result<MergedArtifact> second = service.BuildSingleFunction(w.sources["upload-text"]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(ArtifactSignature(*first), ArtifactSignature(*second));
  EXPECT_EQ(service.stats().artifact_hits, 1);
  EXPECT_EQ(service.stats().singles_built, 1);
}

TEST(CompileServiceTest, IrCacheEvictsAtCapacity) {
  Workflow w = MovieReview();
  CompileServiceOptions options;
  options.ir_cache_capacity = 1;
  options.artifact_cache = false;
  CompileService service(options);
  ASSERT_TRUE(service.BuildSingleFunction(w.sources["upload-text"]).ok());
  ASSERT_TRUE(service.BuildSingleFunction(w.sources["upload-rating"]).ok());
  const CompileServiceStats stats = service.stats();
  EXPECT_EQ(stats.ir_insertions, 2);
  EXPECT_EQ(stats.ir_evictions, 1);
}

// --- Fingerprints ----------------------------------------------------------

TEST(CompileServiceTest, FingerprintTracksEveryCompilationInput) {
  Workflow w = MovieReview();
  CompileService service;
  const MergeSolution solution = FullMergeSolution(w.graph);
  Result<uint64_t> base = service.FingerprintGroup(w.graph, solution.groups[0], w.sources);
  ASSERT_TRUE(base.ok());
  Result<uint64_t> again = service.FingerprintGroup(w.graph, solution.groups[0], w.sources);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*base, *again);  // Deterministic.

  // Source bytes changed -> new fingerprint.
  Workflow edited = MovieReview();
  edited.sources["upload-text"].user_code_bytes += 1024;
  Result<uint64_t> edited_fp =
      service.FingerprintGroup(edited.graph, solution.groups[0], edited.sources);
  ASSERT_TRUE(edited_fp.ok());
  EXPECT_NE(*base, *edited_fp);

  // In-group alpha budget changed -> new fingerprint.
  Workflow realpha = MovieReview(Lang::kRust, /*upload_alpha=*/7);
  Result<uint64_t> alpha_fp =
      service.FingerprintGroup(realpha.graph, solution.groups[0], realpha.sources);
  ASSERT_TRUE(alpha_fp.ok());
  EXPECT_NE(*base, *alpha_fp);

  // Different QuiltcOptions -> new fingerprint.
  CompileServiceOptions no_dce;
  no_dce.quiltc.dce = false;
  CompileService other(no_dce);
  Result<uint64_t> options_fp = other.FingerprintGroup(w.graph, solution.groups[0], w.sources);
  ASSERT_TRUE(options_fp.ok());
  EXPECT_NE(*base, *options_fp);
}

TEST(CompileServiceTest, SourceFingerprintSeparatesFunctions) {
  Workflow w = MovieReview();
  EXPECT_NE(CompileService::FingerprintSource(w.sources["upload-text"]),
            CompileService::FingerprintSource(w.sources["upload-rating"]));
  SourceFunction copy = w.sources["upload-text"];
  EXPECT_EQ(CompileService::FingerprintSource(copy),
            CompileService::FingerprintSource(w.sources["upload-text"]));
  copy.num_dependencies += 1;
  EXPECT_NE(CompileService::FingerprintSource(copy),
            CompileService::FingerprintSource(w.sources["upload-text"]));
}

// --- Thread determinism ----------------------------------------------------

TEST(CompileServiceTest, MergeSolutionIsByteIdenticalAcrossThreadCounts) {
  Workflow w = MovieReview();
  const MergeSolution solution = TwoGroupSolution(w.graph);

  std::vector<std::string> signatures;
  std::vector<std::string> record_lines;
  std::vector<CompileServiceStats> stats;
  for (int threads : {1, 2, 8}) {
    CompileServiceOptions options;
    options.compile_threads = threads;
    CompileService service(options);
    // Two rounds: the second exercises the cache paths under parallelism.
    for (int round = 0; round < 2; ++round) {
      std::vector<CompileRecord> records;
      Result<std::vector<MergedArtifact>> artifacts =
          service.MergeSolution(w.graph, solution, w.sources, &records);
      ASSERT_TRUE(artifacts.ok()) << artifacts.status().ToString();
      if (threads == 1) {
        std::string sig;
        for (const MergedArtifact& a : *artifacts) {
          sig += ArtifactSignature(a);
          sig += "\n---\n";
        }
        signatures.push_back(sig);
        record_lines.push_back(RecordLines(records));
      } else {
        std::string sig;
        for (const MergedArtifact& a : *artifacts) {
          sig += ArtifactSignature(a);
          sig += "\n---\n";
        }
        EXPECT_EQ(sig, signatures[round]) << "threads=" << threads << " round=" << round;
        EXPECT_EQ(RecordLines(records), record_lines[round])
            << "threads=" << threads << " round=" << round;
      }
    }
    stats.push_back(service.stats());
  }
  // Even the cache statistics are thread-invariant: all cache mutation is
  // sequential.
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].frontend_compiles, stats[0].frontend_compiles);
    EXPECT_EQ(stats[i].ir_hits, stats[0].ir_hits);
    EXPECT_EQ(stats[i].ir_insertions, stats[0].ir_insertions);
    EXPECT_EQ(stats[i].artifact_hits, stats[0].artifact_hits);
    EXPECT_EQ(stats[i].artifact_insertions, stats[0].artifact_insertions);
    EXPECT_DOUBLE_EQ(stats[i].charged_cost_s, stats[0].charged_cost_s);
  }
}

// --- Frontend verification (baseline path) ---------------------------------

TEST(CompileServiceTest, CorruptedFrontendModuleIsRejectedOnTheBaselinePath) {
  Workflow w = MovieReview();
  CompileServiceOptions options;
  options.frontend = [](const SourceFunction& source) -> Result<IrModule> {
    Result<IrModule> module = CompileToIr(source);
    if (!module.ok()) {
      return module;
    }
    // Corrupt it: a local call to a symbol that does not exist.
    IrFunction bad;
    bad.symbol = "bad";
    CallInst call;
    call.opcode = CallOpcode::kLocal;
    call.callee_symbol = "no-such-symbol";
    bad.calls.push_back(call);
    QUILT_RETURN_IF_ERROR(module->AddFunction(std::move(bad)));
    return module;
  };
  CompileService service(options);
  Result<MergedArtifact> artifact = service.BuildSingleFunction(w.sources["upload-text"]);
  ASSERT_FALSE(artifact.ok());
  EXPECT_NE(artifact.status().message().find("invalid module"), std::string::npos)
      << artifact.status().ToString();
  // The merge path rejects it too.
  const MergeSolution solution = FullMergeSolution(w.graph);
  EXPECT_FALSE(service.MergeGroup(w.graph, solution.groups[0], w.sources).ok());
}

// --- Modeled-cost accounting (regression: codegen before ImplibWrap) -------

TEST(CompileServiceTest, CodegenCostReflectsThePostPipelineModule) {
  Workflow w = MovieReview();
  CompileService service;
  const MergeSolution solution = FullMergeSolution(w.graph);
  Result<MergedArtifact> artifact = service.MergeGroup(w.graph, solution.groups[0], w.sources);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  // llc lowers the module the LAST mutating pass produced. ImplibWrap adds
  // trampoline shims, so computing codegen cost before it under-counts.
  EXPECT_EQ(artifact->codegen_time, ModeledCodegenTime(artifact->module.TotalCodeSize()));

  Result<MergedArtifact> single = service.BuildSingleFunction(w.sources["upload-text"]);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->codegen_time, ModeledCodegenTime(single->module.TotalCodeSize()));
}

// --- Incremental compilation across controller-style cycles ----------------

TEST(CompileServiceTest, BaselineBuildsSeedTheIrCacheForLaterMerges) {
  Workflow w = MovieReview();
  std::atomic<int> frontend_calls{0};
  CompileServiceOptions options;
  options.frontend = [&frontend_calls](const SourceFunction& source) {
    ++frontend_calls;
    return CompileToIr(source);
  };
  CompileService service(options);

  // Register-style phase: every function gets a baseline single build.
  for (const auto& [handle, source] : w.sources) {
    ASSERT_TRUE(service.BuildSingleFunction(source).ok()) << handle;
  }
  EXPECT_EQ(frontend_calls.load(), static_cast<int>(w.sources.size()));

  // Deploy-style phase: the merge reuses every member's cached IR.
  const MergeSolution solution = FullMergeSolution(w.graph);
  ASSERT_TRUE(service.MergeSolution(w.graph, solution, w.sources).ok());
  EXPECT_EQ(frontend_calls.load(), static_cast<int>(w.sources.size()));

  // Rollback + redeploy-style phase: the artifact cache answers outright.
  const int64_t merges_before = service.stats().merges_built;
  ASSERT_TRUE(service.MergeSolution(w.graph, solution, w.sources).ok());
  EXPECT_EQ(service.stats().merges_built, merges_before);
  EXPECT_EQ(frontend_calls.load(), static_cast<int>(w.sources.size()));
}

TEST(CompileServiceTest, FacadeAndServiceAgree) {
  // The QuiltCompiler facade (caches off, one thread) must produce the same
  // bits as a caching, threaded service.
  Workflow w = MovieReview();
  CompileServiceOptions options;
  options.compile_threads = 4;
  CompileService service(options);
  const MergeSolution solution = TwoGroupSolution(w.graph);
  Result<std::vector<MergedArtifact>> via_service =
      service.MergeSolution(w.graph, solution, w.sources);
  ASSERT_TRUE(via_service.ok());

  QuiltCompiler compiler;
  Result<std::vector<MergedArtifact>> via_facade =
      compiler.MergeSolution(w.graph, solution, w.sources);
  ASSERT_TRUE(via_facade.ok());
  ASSERT_EQ(via_service->size(), via_facade->size());
  for (size_t i = 0; i < via_service->size(); ++i) {
    EXPECT_EQ(ArtifactSignature((*via_service)[i]), ArtifactSignature((*via_facade)[i]));
  }
}

}  // namespace
}  // namespace quilt
