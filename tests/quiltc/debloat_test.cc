// Program-debloating behavior of the pipeline (§1.1, §5.2): when every
// invocation in a group is localized *unconditionally* (no fallback), the
// HTTP stack becomes dead code and is stripped together with libcurl; with
// conditional invocations it must survive (the fallback path needs it).
#include <gtest/gtest.h>

#include "src/apps/deathstarbench.h"
#include "src/quiltc/compiler.h"

namespace quilt {
namespace {

bool HasCurl(const IrModule& module) {
  for (const SharedLibDep& lib : module.shared_libs()) {
    if (lib.name.find("curl") != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool HasSyncInvGlue(const IrModule& module) {
  for (const std::string& symbol : module.function_order()) {
    if (symbol.find(".sync_inv") != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(DebloatTest, ConditionalMergeKeepsHttpStackLazily) {
  const WorkflowApp app = ReadHomeTimeline();
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  QuiltCompiler compiler;  // Conditional invocations on by default.
  Result<MergedArtifact> artifact =
      compiler.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources());
  ASSERT_TRUE(artifact.ok());
  EXPECT_TRUE(HasSyncInvGlue(artifact->module));
  EXPECT_TRUE(HasCurl(artifact->module));
  // ...but lazily: DelayHTTP + Implib wrapping deferred its loading.
  EXPECT_GT(artifact->image.lazy_libs, 0);
  bool curl_lazy = false;
  for (const SharedLibDep& lib : artifact->module.shared_libs()) {
    if (lib.name.find("curl") != std::string::npos) {
      curl_lazy = lib.lazy;
    }
  }
  EXPECT_TRUE(curl_lazy);
}

TEST(DebloatTest, UnconditionalMergeStripsHttpStack) {
  const WorkflowApp app = ReadHomeTimeline();
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  QuiltcOptions options;
  options.conditional_invocations = false;
  QuiltCompiler compiler(options);
  Result<MergedArtifact> artifact =
      compiler.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources());
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  // No remote path remains anywhere: DCE removes the invoke glue...
  EXPECT_FALSE(HasSyncInvGlue(artifact->module));
  // ...and -gc-sections drops libcurl entirely.
  EXPECT_FALSE(HasCurl(artifact->module));

  // The debloated binary is smaller than the conditional one.
  QuiltCompiler conditional;
  Result<MergedArtifact> with_fallback =
      conditional.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources());
  ASSERT_TRUE(with_fallback.ok());
  EXPECT_LT(artifact->image.size_bytes, with_fallback->image.size_bytes);
}

TEST(DebloatTest, PartialMergeKeepsHttpForCutEdges) {
  // Even with conditional invocations off, a partial merge that leaves a cut
  // edge must keep the remote machinery for it.
  const WorkflowApp app = ComposePost(false);
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  QuiltcOptions options;
  options.conditional_invocations = false;
  QuiltCompiler compiler(options);
  MergeGroup group;
  group.root = graph->FindNode("compose-post");
  group.members = {group.root, graph->FindNode("unique-id")};
  Result<MergedArtifact> artifact = compiler.MergeGroup(*graph, group, app.Sources());
  ASSERT_TRUE(artifact.ok());
  EXPECT_TRUE(HasSyncInvGlue(artifact->module));
  EXPECT_TRUE(HasCurl(artifact->module));
}

TEST(DebloatTest, DcePassReportsRemovedBytes) {
  const WorkflowApp app = PageService(false);
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  QuiltcOptions options;
  options.conditional_invocations = false;
  QuiltCompiler compiler(options);
  Result<MergedArtifact> artifact =
      compiler.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources());
  ASSERT_TRUE(artifact.ok());
  int64_t removed_bytes = 0;
  for (const PassStats& pass : artifact->pass_stats) {
    if (pass.pass_name == "DCE") {
      removed_bytes += pass.counter("bytes_removed");
    }
  }
  EXPECT_GT(removed_bytes, 0);
}

}  // namespace
}  // namespace quilt
