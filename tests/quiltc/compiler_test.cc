#include "src/quiltc/compiler.h"

#include <gtest/gtest.h>

#include "src/frontend/frontend.h"

namespace quilt {
namespace {

// Movie-review-style workflow (Figure 3 shape): root fans out to three
// uploaders that all call compose-and-upload.
struct Workflow {
  CallGraph graph;
  std::map<std::string, SourceFunction> sources;
};

Workflow MovieReview(Lang lang = Lang::kRust) {
  Workflow w;
  auto add = [&](const std::string& handle, std::vector<InvocationSite> sites,
                 double cpu = 0.1, double mem = 20) {
    w.graph.AddNode(handle, cpu, mem);
    SourceFunction fn;
    fn.handle = handle;
    fn.lang = lang;
    fn.invocations = std::move(sites);
    w.sources[handle] = fn;
  };
  add("compose-review", {InvocationSite{"upload-user-id", true, false},
                         InvocationSite{"upload-rating", true, false},
                         InvocationSite{"upload-text", true, false}});
  add("upload-user-id", {InvocationSite{"compose-and-upload", false, false}});
  add("upload-rating", {InvocationSite{"compose-and-upload", false, false}});
  add("upload-text", {InvocationSite{"compose-and-upload", false, false}});
  add("compose-and-upload", {});
  auto edge = [&](const std::string& a, const std::string& b, CallType type) {
    EXPECT_TRUE(w.graph
                    .AddEdgeWithAlpha(w.graph.FindNode(a), w.graph.FindNode(b), 100, 1, type)
                    .ok());
  };
  edge("compose-review", "upload-user-id", CallType::kAsync);
  edge("compose-review", "upload-rating", CallType::kAsync);
  edge("compose-review", "upload-text", CallType::kAsync);
  edge("upload-user-id", "compose-and-upload", CallType::kSync);
  edge("upload-rating", "compose-and-upload", CallType::kSync);
  edge("upload-text", "compose-and-upload", CallType::kSync);
  return w;
}

TEST(QuiltCompilerTest, BuildSingleFunctionBaseline) {
  Workflow w = MovieReview();
  QuiltCompiler compiler;
  Result<MergedArtifact> artifact = compiler.BuildSingleFunction(w.sources["upload-text"]);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_TRUE(artifact->IsSingleFunction());
  EXPECT_GT(artifact->image.size_bytes, 1000 * 1024);
  EXPECT_GT(artifact->compile_time, Seconds(10));  // Rust deps dominate.
}

TEST(QuiltCompilerTest, MergesFullWorkflow) {
  Workflow w = MovieReview();
  QuiltCompiler compiler;
  const MergeSolution full = FullMergeSolution(w.graph);
  Result<MergedArtifact> artifact = compiler.MergeGroup(w.graph, full.groups[0], w.sources);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_EQ(artifact->handle, "compose-review");
  EXPECT_EQ(artifact->member_handles.size(), 5u);
  EXPECT_EQ(artifact->member_handles[0], "compose-review");
  EXPECT_TRUE(artifact->module.Verify().ok());
  // All 6 edges localized.
  EXPECT_EQ(artifact->localized_edges.size(), 6u);
  for (const LocalizedEdge& edge : artifact->localized_edges) {
    EXPECT_EQ(edge.budget, 1);
    EXPECT_FALSE(edge.cross_language);
  }
  // No invoke opcodes survive inside the module.
  for (const std::string& symbol : artifact->module.function_order()) {
    for (const CallInst& call : artifact->module.GetFunction(symbol)->calls) {
      EXPECT_NE(call.opcode, CallOpcode::kSyncInvoke) << symbol;
      EXPECT_NE(call.opcode, CallOpcode::kAsyncInvoke) << symbol;
    }
  }
}

TEST(QuiltCompilerTest, MergedBinarySmallerThanSumOfParts) {
  Workflow w = MovieReview();
  QuiltCompiler compiler;
  int64_t sum = 0;
  for (const auto& [handle, source] : w.sources) {
    Result<MergedArtifact> single = compiler.BuildSingleFunction(source);
    ASSERT_TRUE(single.ok());
    sum += single->image.size_bytes;
  }
  const MergeSolution full = FullMergeSolution(w.graph);
  Result<MergedArtifact> merged = compiler.MergeGroup(w.graph, full.groups[0], w.sources);
  ASSERT_TRUE(merged.ok());
  EXPECT_LT(merged->image.size_bytes, sum);
  // But larger than any single function (it contains all the user code).
  EXPECT_GT(merged->image.size_bytes, sum / 5);
}

TEST(QuiltCompilerTest, SharedCalleeIntroducedOnce) {
  Workflow w = MovieReview();
  QuiltCompiler compiler;
  const MergeSolution full = FullMergeSolution(w.graph);
  Result<MergedArtifact> artifact = compiler.MergeGroup(w.graph, full.groups[0], w.sources);
  ASSERT_TRUE(artifact.ok());
  // compose-and-upload handler appears exactly once.
  int count = 0;
  for (const std::string& symbol : artifact->module.function_order()) {
    if (symbol.find("compose_and_upload") != std::string::npos &&
        symbol.find("handler") != std::string::npos) {
      ++count;
    }
  }
  EXPECT_EQ(count, 1);
  EXPECT_EQ(artifact->member_handles.size(), 5u);
}

TEST(QuiltCompilerTest, CrossLanguageMerge) {
  Workflow w = MovieReview();
  // Mixed languages: the paper's five languages across the workflow.
  w.sources["compose-review"].lang = Lang::kRust;
  w.sources["upload-user-id"].lang = Lang::kC;
  w.sources["upload-rating"].lang = Lang::kGo;
  w.sources["upload-text"].lang = Lang::kSwift;
  w.sources["compose-and-upload"].lang = Lang::kCpp;
  QuiltCompiler compiler;
  const MergeSolution full = FullMergeSolution(w.graph);
  Result<MergedArtifact> artifact = compiler.MergeGroup(w.graph, full.groups[0], w.sources);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_TRUE(artifact->module.Verify().ok());
  int cross = 0;
  for (const LocalizedEdge& edge : artifact->localized_edges) {
    if (edge.cross_language) {
      ++cross;
    }
  }
  EXPECT_EQ(cross, 6);  // Every edge crosses a language boundary here.
  // Shims for compose-and-upload exist for multiple caller languages.
  EXPECT_TRUE(artifact->module.HasFunction("c2callee_compose_and_upload"));
  EXPECT_TRUE(artifact->module.HasFunction("caller2c_compose_and_upload_from_c"));
  EXPECT_TRUE(artifact->module.HasFunction("caller2c_compose_and_upload_from_go"));
  EXPECT_TRUE(artifact->module.HasFunction("caller2c_compose_and_upload_from_swift"));
}

TEST(QuiltCompilerTest, RespectsMergeOptOut) {
  Workflow w = MovieReview();
  w.sources["upload-text"].mergeable = false;
  QuiltCompiler compiler;
  const MergeSolution full = FullMergeSolution(w.graph);
  Result<MergedArtifact> artifact = compiler.MergeGroup(w.graph, full.groups[0], w.sources);
  EXPECT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QuiltCompilerTest, PartialGroupKeepsRemoteEdges) {
  Workflow w = MovieReview();
  QuiltCompiler compiler;
  // Merge only the root and upload-user-id: other invokes stay remote.
  MergeGroup group;
  group.root = w.graph.FindNode("compose-review");
  group.members = {group.root, w.graph.FindNode("upload-user-id")};
  Result<MergedArtifact> artifact = compiler.MergeGroup(w.graph, group, w.sources);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_EQ(artifact->localized_edges.size(), 1u);
  // upload-user-id's call to compose-and-upload survives as a remote invoke.
  bool remote_found = false;
  for (const std::string& symbol : artifact->module.function_order()) {
    for (const CallInst& call : artifact->module.GetFunction(symbol)->calls) {
      if (call.opcode == CallOpcode::kSyncInvoke &&
          call.target_handle == "compose-and-upload") {
        remote_found = true;
      }
    }
  }
  EXPECT_TRUE(remote_found);
}

TEST(QuiltCompilerTest, DisconnectedGroupRejected) {
  Workflow w = MovieReview();
  QuiltCompiler compiler;
  MergeGroup group;
  group.root = w.graph.FindNode("compose-review");
  // compose-and-upload unreachable without an uploader in the group.
  group.members = {group.root, w.graph.FindNode("compose-and-upload")};
  EXPECT_FALSE(compiler.MergeGroup(w.graph, group, w.sources).ok());
}

TEST(QuiltCompilerTest, MissingSourceRejected) {
  Workflow w = MovieReview();
  w.sources.erase("upload-text");
  QuiltCompiler compiler;
  const MergeSolution full = FullMergeSolution(w.graph);
  EXPECT_EQ(compiler.MergeGroup(w.graph, full.groups[0], w.sources).status().code(),
            StatusCode::kNotFound);
}

TEST(QuiltCompilerTest, MergeSolutionProducesArtifactPerGroup) {
  Workflow w = MovieReview();
  QuiltCompiler compiler;
  MergeSolution solution;
  solution.groups.push_back(
      MergeGroup{w.graph.FindNode("compose-review"),
                 {w.graph.FindNode("compose-review"), w.graph.FindNode("upload-user-id"),
                  w.graph.FindNode("upload-rating"), w.graph.FindNode("upload-text")}});
  solution.groups.push_back(MergeGroup{w.graph.FindNode("compose-and-upload"),
                                       {w.graph.FindNode("compose-and-upload")}});
  Result<std::vector<MergedArtifact>> artifacts =
      compiler.MergeSolution(w.graph, solution, w.sources);
  ASSERT_TRUE(artifacts.ok()) << artifacts.status().ToString();
  ASSERT_EQ(artifacts->size(), 2u);
  EXPECT_EQ((*artifacts)[0].member_handles.size(), 4u);
  EXPECT_TRUE((*artifacts)[1].IsSingleFunction());
}

TEST(QuiltCompilerTest, DelayHttpMakesCurlLazyInMergedImage) {
  Workflow w = MovieReview();
  QuiltCompiler compiler;
  const MergeSolution full = FullMergeSolution(w.graph);
  Result<MergedArtifact> merged = compiler.MergeGroup(w.graph, full.groups[0], w.sources);
  ASSERT_TRUE(merged.ok());
  EXPECT_GT(merged->image.lazy_libs, 0);  // libcurl + transitive closure.

  Result<MergedArtifact> baseline =
      compiler.BuildSingleFunction(w.sources["compose-review"]);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->image.lazy_libs, 0);
  EXPECT_LT(merged->image.eager_libs, baseline->image.eager_libs);
}

TEST(QuiltCompilerTest, MergeTimeScalesWithFunctions) {
  Workflow w = MovieReview();
  QuiltCompiler compiler;
  MergeGroup two;
  two.root = w.graph.FindNode("compose-review");
  two.members = {two.root, w.graph.FindNode("upload-user-id")};
  Result<MergedArtifact> small = compiler.MergeGroup(w.graph, two, w.sources);
  ASSERT_TRUE(small.ok());
  const MergeSolution full = FullMergeSolution(w.graph);
  Result<MergedArtifact> large = compiler.MergeGroup(w.graph, full.groups[0], w.sources);
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->merge_time, small->merge_time);
  // Compile time is dominated by the (shared) dependency build: same
  // language everywhere, so the gap is small relative to the total.
  EXPECT_GT(large->compile_time, small->compile_time);
}

TEST(QuiltCompilerTest, ConditionalInvocationsCanBeDisabled) {
  Workflow w = MovieReview();
  QuiltcOptions options;
  options.conditional_invocations = false;
  QuiltCompiler compiler(options);
  const MergeSolution full = FullMergeSolution(w.graph);
  Result<MergedArtifact> artifact = compiler.MergeGroup(w.graph, full.groups[0], w.sources);
  ASSERT_TRUE(artifact.ok());
  for (const LocalizedEdge& edge : artifact->localized_edges) {
    EXPECT_EQ(edge.budget, 0);
  }
}

}  // namespace
}  // namespace quilt
