#include <gtest/gtest.h>

#include "src/frontend/frontend.h"
#include "src/ir/linker.h"
#include "src/passes/dce.h"
#include "src/passes/delay_http.h"
#include "src/passes/implib_wrap.h"
#include "src/passes/merge_func.h"
#include "src/passes/rename_func.h"
#include "src/passes/shims.h"

namespace quilt {
namespace {

SourceFunction Caller(Lang lang = Lang::kRust) {
  SourceFunction fn;
  fn.handle = "caller-fn";
  fn.lang = lang;
  fn.invocations.push_back(InvocationSite{"callee-fn", false, false});
  return fn;
}

SourceFunction Callee(Lang lang = Lang::kRust) {
  SourceFunction fn;
  fn.handle = "callee-fn";
  fn.lang = lang;
  return fn;
}

// Compiles caller+callee, renames the callee, links: the state right before
// MergeFunc runs.
IrModule LinkedPair(Lang caller_lang = Lang::kRust, Lang callee_lang = Lang::kRust) {
  IrModule caller = std::move(CompileToIr(Caller(caller_lang))).value();
  IrModule callee = std::move(CompileToIr(Callee(callee_lang))).value();
  Result<RenameResult> renamed = RunRenameFuncPass(callee, "callee_fn");
  EXPECT_TRUE(renamed.ok());
  EXPECT_TRUE(LinkInto(caller, callee).ok());
  return caller;
}

TEST(RenameFuncTest, RenamesUserSymbolsOnly) {
  IrModule module = std::move(CompileToIr(Callee())).value();
  Result<RenameResult> result = RunRenameFuncPass(module, "callee_fn");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.changed);
  EXPECT_FALSE(module.HasFunction("main"));
  EXPECT_TRUE(module.HasFunction("main__callee_fn"));
  EXPECT_FALSE(module.HasFunction("parse_input"));
  EXPECT_TRUE(module.HasFunction("parse_input__callee_fn"));
  // Library code keeps its symbols for link-time dedup.
  EXPECT_TRUE(module.HasFunction("rt.rust.core"));
  EXPECT_TRUE(module.Verify().ok());
}

TEST(RenameFuncTest, Idempotent) {
  IrModule module = std::move(CompileToIr(Callee())).value();
  ASSERT_TRUE(RunRenameFuncPass(module, "x").ok());
  Result<RenameResult> second = RunRenameFuncPass(module, "x");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->stats.changed);
}

TEST(RenameFuncTest, RejectsEmptySuffix) {
  IrModule module = std::move(CompileToIr(Callee())).value();
  EXPECT_FALSE(RunRenameFuncPass(module, "").ok());
}

TEST(RenameFuncTest, EnablesLinkingTwoSameLanguageFunctions) {
  // Without RenameFunc, linking collides on "main"; with it, linking works
  // and shared dependencies deduplicate.
  IrModule caller = std::move(CompileToIr(Caller())).value();
  IrModule callee = std::move(CompileToIr(Callee())).value();
  IrModule callee_copy = callee;
  EXPECT_FALSE(LinkInto(caller, callee_copy).ok());

  ASSERT_TRUE(RunRenameFuncPass(callee, "callee_fn").ok());
  LinkStats stats;
  ASSERT_TRUE(LinkInto(caller, callee, &stats).ok());
  EXPECT_GT(stats.functions_deduplicated, 0);  // libstd/serde/invoke glue.
}

TEST(MergeFuncTest, LocalizesInvokeAndRemovesScaffold) {
  IrModule module = LinkedPair();
  const std::string callee_entry =
      RenamedSymbol(MangleSymbol(Lang::kRust, "callee-fn", "handler"), "callee_fn");
  MergeFuncOptions options;
  options.callee_handle = "callee-fn";
  options.callee_entry_symbol = callee_entry;
  options.callee_scaffold_symbol = "main__callee_fn";
  options.profiled_alpha = 3;
  Result<PassStats> stats = RunMergeFuncPass(module, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->counter("calls_localized"), 1);
  EXPECT_EQ(stats->counter("scaffolds_removed"), 1);
  EXPECT_FALSE(module.HasFunction("main__callee_fn"));

  // The callee is now a plain local function.
  const IrFunction* callee = module.GetFunction(callee_entry);
  ASSERT_NE(callee, nullptr);
  EXPECT_FALSE(callee->is_handler);
  EXPECT_FALSE(callee->uses_get_req);

  // The caller's invoke became a budgeted local call.
  const IrFunction* handler =
      module.GetFunction(MangleSymbol(Lang::kRust, "caller-fn", "handler"));
  ASSERT_NE(handler, nullptr);
  bool found = false;
  for (const CallInst& call : handler->calls) {
    if (call.localized) {
      found = true;
      EXPECT_EQ(call.opcode, CallOpcode::kLocal);
      EXPECT_EQ(call.callee_symbol, callee_entry);
      EXPECT_EQ(call.target_handle, "callee-fn");  // Fallback preserved.
      EXPECT_EQ(call.budget, 3);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(module.Verify().ok());
}

TEST(MergeFuncTest, UnconditionalModeHasZeroBudget) {
  IrModule module = LinkedPair();
  MergeFuncOptions options;
  options.callee_handle = "callee-fn";
  options.callee_entry_symbol =
      RenamedSymbol(MangleSymbol(Lang::kRust, "callee-fn", "handler"), "callee_fn");
  options.conditional_invocations = false;
  options.profiled_alpha = 5;
  ASSERT_TRUE(RunMergeFuncPass(module, options).ok());
  const IrFunction* handler =
      module.GetFunction(MangleSymbol(Lang::kRust, "caller-fn", "handler"));
  for (const CallInst& call : handler->calls) {
    if (call.localized) {
      EXPECT_EQ(call.budget, 0);
    }
  }
}

TEST(MergeFuncTest, PerFunctionBudgetOverride) {
  IrModule module = LinkedPair();
  const std::string caller_handler = MangleSymbol(Lang::kRust, "caller-fn", "handler");
  MergeFuncOptions options;
  options.callee_handle = "callee-fn";
  options.callee_entry_symbol =
      RenamedSymbol(MangleSymbol(Lang::kRust, "callee-fn", "handler"), "callee_fn");
  options.profiled_alpha = 1;
  options.budget_by_function_symbol[caller_handler] = 7;
  ASSERT_TRUE(RunMergeFuncPass(module, options).ok());
  const IrFunction* handler = module.GetFunction(caller_handler);
  for (const CallInst& call : handler->calls) {
    if (call.localized) {
      EXPECT_EQ(call.budget, 7);
    }
  }
}

TEST(MergeFuncTest, MissingCalleeEntryFails) {
  IrModule module = LinkedPair();
  MergeFuncOptions options;
  options.callee_handle = "callee-fn";
  options.callee_entry_symbol = "nonexistent";
  EXPECT_FALSE(RunMergeFuncPass(module, options).ok());
}

TEST(MergeFuncTest, CrossLanguageInsertsShims) {
  IrModule module = LinkedPair(Lang::kRust, Lang::kSwift);
  const std::string callee_entry =
      RenamedSymbol(MangleSymbol(Lang::kSwift, "callee-fn", "handler"), "callee_fn");
  MergeFuncOptions options;
  options.callee_handle = "callee-fn";
  options.callee_entry_symbol = callee_entry;
  options.callee_scaffold_symbol = "main__callee_fn";
  Result<PassStats> stats = RunMergeFuncPass(module, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->counter("cross_lang_shims"), 1);
  EXPECT_TRUE(module.HasFunction("c2callee_callee_fn"));
  EXPECT_TRUE(module.HasFunction("caller2c_callee_fn_from_rust"));
  // The shim chain: caller2c (rust, native strings) -> c2callee (swift,
  // char*) -> callee handler.
  const IrFunction* caller2c = module.GetFunction("caller2c_callee_fn_from_rust");
  EXPECT_EQ(caller2c->lang, Lang::kRust);
  EXPECT_EQ(caller2c->param_kind, StringKind::kRustString);
  EXPECT_EQ(caller2c->calls[0].callee_symbol, "c2callee_callee_fn");
  const IrFunction* c2callee = module.GetFunction("c2callee_callee_fn");
  EXPECT_EQ(c2callee->lang, Lang::kSwift);
  EXPECT_EQ(c2callee->param_kind, StringKind::kCChar);
  EXPECT_EQ(c2callee->calls[0].callee_symbol, callee_entry);
  EXPECT_TRUE(module.Verify().ok());
}

TEST(ShimsTest, ReusedAcrossMultipleCallers) {
  IrModule module = LinkedPair(Lang::kGo, Lang::kRust);
  const std::string callee_entry =
      RenamedSymbol(MangleSymbol(Lang::kRust, "callee-fn", "handler"), "callee_fn");
  Result<std::string> first =
      EnsureCrossLangShims(module, Lang::kGo, callee_entry, "callee-fn");
  ASSERT_TRUE(first.ok());
  const int functions_before = module.num_functions();
  Result<std::string> second =
      EnsureCrossLangShims(module, Lang::kGo, callee_entry, "callee-fn");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(module.num_functions(), functions_before);
}

TEST(ShimsTest, MissingTargetErrors) {
  IrModule module("m");
  EXPECT_FALSE(EnsureCrossLangShims(module, Lang::kRust, "missing", "h").ok());
}

TEST(DelayHttpTest, DefersCtorAndCurl) {
  IrModule module = LinkedPair();
  Result<PassStats> stats = RunDelayHttpPass(module);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->counter("ctors_deferred"), 1);
  EXPECT_EQ(stats->counter("libs_deferred"), 1);
  for (const GlobalCtor& ctor : module.ctors()) {
    EXPECT_FALSE(ctor.is_http_init);
  }
  bool curl_lazy = false;
  for (const SharedLibDep& lib : module.shared_libs()) {
    if (lib.name == "libcurl.so.4") {
      curl_lazy = lib.lazy;
    }
  }
  EXPECT_TRUE(curl_lazy);
}

TEST(DelayHttpTest, IdempotentOnSecondRun) {
  IrModule module = LinkedPair();
  ASSERT_TRUE(RunDelayHttpPass(module).ok());
  Result<PassStats> second = RunDelayHttpPass(module);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->changed);
}

TEST(DceTest, RemovesUnreachableScaffold) {
  IrModule module = LinkedPair();
  const std::string callee_entry =
      RenamedSymbol(MangleSymbol(Lang::kRust, "callee-fn", "handler"), "callee_fn");
  MergeFuncOptions mf;
  mf.callee_handle = "callee-fn";
  mf.callee_entry_symbol = callee_entry;
  mf.callee_scaffold_symbol = "main__callee_fn";
  ASSERT_TRUE(RunMergeFuncPass(module, mf).ok());

  DceOptions dce;
  dce.extra_roots = {"main"};
  Result<PassStats> stats = RunDcePass(module, dce);
  ASSERT_TRUE(stats.ok());
  // Callee helpers reachable through the callee entry stay; anything else
  // unreferenced is gone.
  EXPECT_TRUE(module.HasFunction(callee_entry));
  EXPECT_TRUE(module.HasFunction("parse_input__callee_fn"));
  EXPECT_TRUE(module.Verify().ok());
}

TEST(DceTest, ConditionalFallbackKeepsHttpStack) {
  IrModule module = LinkedPair();
  const std::string callee_entry =
      RenamedSymbol(MangleSymbol(Lang::kRust, "callee-fn", "handler"), "callee_fn");
  MergeFuncOptions mf;
  mf.callee_handle = "callee-fn";
  mf.callee_entry_symbol = callee_entry;
  mf.callee_scaffold_symbol = "main__callee_fn";
  mf.profiled_alpha = 2;  // Conditional: fallback possible.
  ASSERT_TRUE(RunMergeFuncPass(module, mf).ok());
  DceOptions dce;
  dce.extra_roots = {"main"};
  ASSERT_TRUE(RunDcePass(module, dce).ok());
  EXPECT_TRUE(module.HasFunction("rt.rust.sync_inv"));
  bool curl_present = false;
  for (const SharedLibDep& lib : module.shared_libs()) {
    if (lib.name == "libcurl.so.4") {
      curl_present = true;
    }
  }
  EXPECT_TRUE(curl_present);
}

TEST(DceTest, RequiresRoots) {
  IrModule module("empty");
  EXPECT_FALSE(RunDcePass(module).ok());
}

TEST(ImplibWrapTest, WrapsColdHttpStack) {
  IrModule module = LinkedPair();
  const std::string callee_entry =
      RenamedSymbol(MangleSymbol(Lang::kRust, "callee-fn", "handler"), "callee_fn");
  MergeFuncOptions mf;
  mf.callee_handle = "callee-fn";
  mf.callee_entry_symbol = callee_entry;
  mf.callee_scaffold_symbol = "main__callee_fn";
  ASSERT_TRUE(RunMergeFuncPass(module, mf).ok());
  Result<PassStats> stats = RunImplibWrapPass(module);
  ASSERT_TRUE(stats.ok());
  bool curl_lazy = false;
  for (const SharedLibDep& lib : module.shared_libs()) {
    if (lib.name == "libcurl.so.4") {
      curl_lazy = lib.lazy;
    }
    if (lib.name == "libc.so.6") {
      EXPECT_FALSE(lib.lazy);  // libc never wrapped.
    }
  }
  EXPECT_TRUE(curl_lazy);
}

}  // namespace
}  // namespace quilt
