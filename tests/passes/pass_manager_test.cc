#include "src/passes/pass_manager.h"

#include <gtest/gtest.h>

#include "src/common/strings.h"

namespace quilt {
namespace {

IrFunction SimpleFn(const std::string& symbol) {
  IrFunction fn;
  fn.symbol = symbol;
  fn.linkage = Linkage::kInternal;
  fn.code_size = 128;
  return fn;
}

IrModule SimpleModule() {
  IrModule module("m");
  EXPECT_TRUE(module.AddFunction(SimpleFn("a")).ok());
  EXPECT_TRUE(module.AddFunction(SimpleFn("b")).ok());
  return module;
}

std::unique_ptr<Pass> LoggingPass(const std::string& name, std::vector<std::string>* log) {
  return MakeFunctionPass(name, [name, log](IrModule&) -> Result<PassStats> {
    log->push_back(name);
    PassStats stats;
    stats.pass_name = name;
    stats.changed = false;
    return stats;
  });
}

TEST(PassManagerTest, RunsPassesInOrderAndCollectsStats) {
  std::vector<std::string> log;
  PassManager pm;
  pm.Add(LoggingPass("first", &log));
  pm.Add(LoggingPass("second", &log));
  pm.Add(LoggingPass("third", &log));
  EXPECT_EQ(pm.num_passes(), 3u);

  IrModule module = SimpleModule();
  std::vector<PassStats> stats;
  ASSERT_TRUE(pm.Run(module, &stats).ok());
  EXPECT_EQ(log, (std::vector<std::string>{"first", "second", "third"}));
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].pass_name, "first");
  EXPECT_EQ(stats[2].pass_name, "third");
  for (const PassStats& s : stats) {
    EXPECT_GE(s.wall_ms, 0.0);
  }
}

TEST(PassManagerTest, ErrorIsPrefixedWithPassNameAndStopsPipeline) {
  std::vector<std::string> log;
  PassManager pm;
  pm.Add(LoggingPass("ok-pass", &log));
  pm.Add(MakeFunctionPass("bad-pass", [](IrModule&) -> Result<PassStats> {
    return InternalError("boom");
  }));
  pm.Add(LoggingPass("never-runs", &log));

  IrModule module = SimpleModule();
  std::vector<PassStats> stats;
  Status status = pm.Run(module, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bad-pass"), std::string::npos) << status.ToString();
  EXPECT_EQ(log, (std::vector<std::string>{"ok-pass"}));
  // Stats of the passes that already ran are preserved.
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].pass_name, "ok-pass");
}

// A pass that corrupts the module (dangling local call). Without per-pass
// verification the pipeline happily continues; with it, the failure is
// attributed to the offending pass by name.
std::unique_ptr<Pass> CorruptingPass() {
  return MakeFunctionPass("corruptor", [](IrModule& module) -> Result<PassStats> {
    IrFunction fn = SimpleFn("corrupt");
    CallInst call;
    call.opcode = CallOpcode::kLocal;
    call.callee_symbol = "no-such-symbol";
    fn.calls.push_back(call);
    QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(fn)));
    PassStats stats;
    stats.pass_name = "corruptor";
    stats.changed = true;
    return stats;
  });
}

TEST(PassManagerTest, VerifyEachPassAttributesCorruptionToTheOffendingPass) {
  std::vector<std::string> log;
  PassManagerOptions options;
  options.verify_each_pass = true;
  PassManager pm(options);
  pm.Add(LoggingPass("clean", &log));
  pm.Add(CorruptingPass());
  pm.Add(LoggingPass("after", &log));

  IrModule module = SimpleModule();
  Status status = pm.Run(module);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("corruptor"), std::string::npos) << status.ToString();
  // The pass after the corruptor never ran.
  EXPECT_EQ(log, (std::vector<std::string>{"clean"}));
}

TEST(PassManagerTest, WithoutVerifyEachPassCorruptionGoesUnnoticed) {
  PassManager pm;  // verify_each_pass defaults to false.
  pm.Add(CorruptingPass());
  IrModule module = SimpleModule();
  EXPECT_TRUE(pm.Run(module).ok());
  EXPECT_FALSE(module.Verify().ok());  // ... but the module really is broken.
}

TEST(PassManagerTest, PostMergePipelineHonorsToggles) {
  PostMergePipelineOptions all;
  PassManager full = BuildPostMergePipeline(all);
  EXPECT_EQ(full.num_passes(), 3u);
  const std::vector<std::string> names = full.pass_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "DelayHTTP");
  EXPECT_EQ(names[1], "DCE");
  EXPECT_EQ(names[2], "ImplibWrap");

  PostMergePipelineOptions none;
  none.delay_http = false;
  none.dce = false;
  none.implib_wrap = false;
  EXPECT_EQ(BuildPostMergePipeline(none).num_passes(), 0u);

  PostMergePipelineOptions dce_only;
  dce_only.delay_http = false;
  dce_only.implib_wrap = false;
  PassManager pm = BuildPostMergePipeline(dce_only);
  ASSERT_EQ(pm.num_passes(), 1u);
  EXPECT_EQ(pm.pass_names()[0], "DCE");
}

}  // namespace
}  // namespace quilt
