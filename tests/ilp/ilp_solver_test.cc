#include "src/ilp/ilp_solver.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ilp/ilp_model.h"

namespace quilt {
namespace {

TEST(IlpSolverTest, TrivialUnconstrainedMinimum) {
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  const int b = model.AddBinaryVar("b");
  model.SetObjectiveCoef(a, 3.0);
  model.SetObjectiveCoef(b, 5.0);
  IlpSolver solver;
  const IlpSolution sol = solver.Solve(model);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_EQ(sol.objective, 0.0);
  EXPECT_EQ(sol.values[a], 0);
  EXPECT_EQ(sol.values[b], 0);
}

TEST(IlpSolverTest, ForcedSelection) {
  // Minimize 3a + 5b subject to a + b >= 1.
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  const int b = model.AddBinaryVar("b");
  model.SetObjectiveCoef(a, 3.0);
  model.SetObjectiveCoef(b, 5.0);
  model.AddGreaterEqual({{a, 1.0}, {b, 1.0}}, 1.0);
  IlpSolver solver;
  const IlpSolution sol = solver.Solve(model);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_EQ(sol.objective, 3.0);
  EXPECT_EQ(sol.values[a], 1);
  EXPECT_EQ(sol.values[b], 0);
}

TEST(IlpSolverTest, Knapsack) {
  // Maximize value = minimize -value. Items (value, weight):
  // (6,3) (5,2) (4,2), capacity 4 -> best picks items 2 and 3: value 9.
  IlpModel model;
  const int x0 = model.AddBinaryVar("x0");
  const int x1 = model.AddBinaryVar("x1");
  const int x2 = model.AddBinaryVar("x2");
  model.SetObjectiveCoef(x0, -6.0);
  model.SetObjectiveCoef(x1, -5.0);
  model.SetObjectiveCoef(x2, -4.0);
  model.AddLessEqual({{x0, 3.0}, {x1, 2.0}, {x2, 2.0}}, 4.0);
  IlpSolver solver;
  const IlpSolution sol = solver.Solve(model);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_EQ(sol.objective, -9.0);
  EXPECT_EQ(sol.values[x0], 0);
  EXPECT_EQ(sol.values[x1], 1);
  EXPECT_EQ(sol.values[x2], 1);
}

TEST(IlpSolverTest, InfeasibleDetected) {
  // a + b >= 3 with binaries is impossible.
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  const int b = model.AddBinaryVar("b");
  model.AddGreaterEqual({{a, 1.0}, {b, 1.0}}, 3.0);
  IlpSolver solver;
  EXPECT_EQ(solver.Solve(model).status, IlpStatus::kInfeasible);
}

TEST(IlpSolverTest, EqualityConstraint) {
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  const int b = model.AddBinaryVar("b");
  const int c = model.AddBinaryVar("c");
  model.SetObjectiveCoef(a, 1.0);
  model.SetObjectiveCoef(b, 2.0);
  model.SetObjectiveCoef(c, 3.0);
  model.AddEquality({{a, 1.0}, {b, 1.0}, {c, 1.0}}, 2.0);
  IlpSolver solver;
  const IlpSolution sol = solver.Solve(model);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_EQ(sol.objective, 3.0);  // a and b chosen.
}

TEST(IlpSolverTest, FixVarRespected) {
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  const int b = model.AddBinaryVar("b");
  model.SetObjectiveCoef(a, 1.0);
  model.FixVar(a, 1);
  model.AddGreaterEqual({{a, 1.0}, {b, 1.0}}, 1.0);
  IlpSolver solver;
  const IlpSolution sol = solver.Solve(model);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_EQ(sol.values[a], 1);
  EXPECT_EQ(sol.objective, 1.0);
}

TEST(IlpSolverTest, ImplicationChainPropagates) {
  // y0 <= y1 <= y2 <= ... <= y9; y0 fixed 1 forces all.
  IlpModel model;
  std::vector<int> y;
  for (int i = 0; i < 10; ++i) {
    y.push_back(model.AddBinaryVar("y" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < 10; ++i) {
    model.AddLessEqual({{y[i], 1.0}, {y[i + 1], -1.0}}, 0.0);
  }
  model.FixVar(y[0], 1);
  IlpSolver solver;
  const IlpSolution sol = solver.Solve(model);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sol.values[y[i]], 1) << "y" << i;
  }
}

TEST(IlpSolverTest, CutoffRejectsNonImprovingSolutions) {
  // Only solution costs 5; cutoff 5 means "must be < 5" -> no better.
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  model.SetObjectiveCoef(a, 5.0);
  model.AddGreaterEqual({{a, 1.0}}, 1.0);
  IlpSolver solver;
  IlpSolveOptions options;
  options.cutoff = 5.0;
  EXPECT_EQ(solver.Solve(model, options).status, IlpStatus::kNoBetterThanCutoff);
  options.cutoff = 5.1;
  EXPECT_EQ(solver.Solve(model, options).status, IlpStatus::kOptimal);
}

TEST(IlpSolverTest, MipGapAcceptsNearOptimal) {
  // Optimal is 10 (pick a), but with a large gap the solver may stop at the
  // first incumbent; any returned solution must still be feasible and within
  // the gap of optimal.
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  const int b = model.AddBinaryVar("b");
  model.SetObjectiveCoef(a, 10.0);
  model.SetObjectiveCoef(b, 11.0);
  model.AddGreaterEqual({{a, 1.0}, {b, 1.0}}, 1.0);
  IlpSolver solver;
  IlpSolveOptions options;
  options.mip_gap = 0.15;
  const IlpSolution sol = solver.Solve(model, options);
  ASSERT_TRUE(sol.has_solution());
  EXPECT_LE(sol.objective, 10.0 * 1.15 + 1e-9);
}

TEST(IlpSolverTest, NegativeCoefficientConstraints) {
  // x - y <= 0 means x=1 forces y=1. Minimize y: both zero. Force x=1.
  IlpModel model;
  const int x = model.AddBinaryVar("x");
  const int y = model.AddBinaryVar("y");
  model.SetObjectiveCoef(y, 1.0);
  model.AddLessEqual({{x, 1.0}, {y, -1.0}}, 0.0);
  model.FixVar(x, 1);
  IlpSolver solver;
  const IlpSolution sol = solver.Solve(model);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_EQ(sol.values[y], 1);
  EXPECT_EQ(sol.objective, 1.0);
}

TEST(IlpSolverTest, NodeLimitReturnsLimitStatus) {
  // Hard-ish random instance; with max_nodes=1 the solver cannot finish.
  IlpModel model;
  Rng rng(3);
  std::vector<int> vars;
  for (int i = 0; i < 30; ++i) {
    vars.push_back(model.AddBinaryVar("v" + std::to_string(i)));
    model.SetObjectiveCoef(vars.back(), rng.UniformDouble(1, 10));
  }
  for (int c = 0; c < 15; ++c) {
    std::vector<IlpTerm> terms;
    for (int j = 0; j < 8; ++j) {
      terms.push_back({vars[rng.UniformInt(0, 29)], rng.UniformDouble(-4, 4)});
    }
    model.AddLessEqual(std::move(terms), rng.UniformDouble(1, 4));
  }
  IlpSolver solver;
  IlpSolveOptions options;
  options.max_nodes = 1;
  const IlpSolution sol = solver.Solve(model, options);
  EXPECT_TRUE(sol.status == IlpStatus::kLimitReached || sol.status == IlpStatus::kFeasible ||
              sol.status == IlpStatus::kOptimal);
}

// Property test: on random feasible instances, the B&B solution matches brute
// force enumeration.
class IlpRandomInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(IlpRandomInstanceTest, MatchesBruteForce) {
  Rng rng(1000 + GetParam());
  const int n = static_cast<int>(rng.UniformInt(3, 12));
  IlpModel model;
  std::vector<int> vars;
  std::vector<double> obj(n);
  for (int i = 0; i < n; ++i) {
    vars.push_back(model.AddBinaryVar("v" + std::to_string(i)));
    obj[i] = rng.UniformDouble(-5, 10);
    model.SetObjectiveCoef(vars[i], obj[i]);
  }
  struct Con {
    std::vector<double> coef;
    double lb, ub;
  };
  std::vector<Con> cons;
  const int num_cons = static_cast<int>(rng.UniformInt(1, 6));
  for (int c = 0; c < num_cons; ++c) {
    Con con;
    con.coef.resize(n);
    std::vector<IlpTerm> terms;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) {
        con.coef[i] = rng.UniformDouble(-3, 3);
        terms.push_back({vars[i], con.coef[i]});
      }
    }
    con.lb = rng.Bernoulli(0.5) ? rng.UniformDouble(-2, 1) : -IlpModel::kInfinity;
    con.ub = rng.UniformDouble(1, 5);
    if (con.lb > con.ub) {
      con.lb = -IlpModel::kInfinity;
    }
    cons.push_back(con);
    model.AddConstraint(std::move(terms), cons.back().lb, cons.back().ub);
  }

  // Brute force.
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool feasible = true;
    for (const Con& con : cons) {
      double act = 0.0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) {
          act += con.coef[i];
        }
      }
      if (act > con.ub + 1e-9 || act < con.lb - 1e-9) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      continue;
    }
    double value = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        value += obj[i];
      }
    }
    best = std::min(best, value);
  }

  IlpSolver solver;
  const IlpSolution sol = solver.Solve(model);
  if (std::isinf(best)) {
    EXPECT_EQ(sol.status, IlpStatus::kInfeasible);
  } else {
    ASSERT_EQ(sol.status, IlpStatus::kOptimal) << "expected optimum " << best;
    EXPECT_NEAR(sol.objective, best, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, IlpRandomInstanceTest, ::testing::Range(0, 40));

// A dense random instance the branch-and-bound cannot close in its first
// 1024 nodes (the deadline check cadence).
IlpModel HardInstance(int n, Rng& rng) {
  IlpModel model;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(model.AddBinaryVar("x" + std::to_string(i)));
    model.SetObjectiveCoef(vars[i], -(1.0 + rng.UniformDouble() * 0.01));
  }
  for (int c = 0; c < 4; ++c) {
    std::vector<IlpTerm> terms;
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double w = 1.0 + rng.UniformDouble() * 0.1;
      terms.push_back({vars[i], w});
      total += w;
    }
    model.AddLessEqual(terms, total * 0.5);
  }
  return model;
}

TEST(IlpSolverTest, ExpiredDeadlineStopsAtFirstCheckpoint) {
  Rng rng(8);
  const IlpModel model = HardInstance(40, rng);
  IlpSolver solver;

  // Without a deadline the search runs far past the first checkpoint (capped
  // by max_nodes here — the full tree is impractically large).
  IlpSolveOptions capped;
  capped.max_nodes = 20000;
  const IlpSolution unbounded = solver.Solve(model, capped);
  ASSERT_GT(unbounded.nodes_explored, 2048);

  IlpSolveOptions options;
  options.deadline = std::chrono::steady_clock::now();  // Already expired.
  const IlpSolution stopped = solver.Solve(model, options);
  EXPECT_LE(stopped.nodes_explored, 1024);
  // The incumbent found before the stop (if any) comes back as kFeasible.
  EXPECT_TRUE(stopped.status == IlpStatus::kFeasible ||
              stopped.status == IlpStatus::kLimitReached)
      << static_cast<int>(stopped.status);
}

TEST(IlpSolverTest, GenerousDeadlineStillFindsTheOptimum) {
  Rng rng(8);
  const IlpModel model = HardInstance(12, rng);
  IlpSolver solver;
  const IlpSolution exact = solver.Solve(model);
  ASSERT_EQ(exact.status, IlpStatus::kOptimal);

  IlpSolveOptions options;
  options.deadline = std::chrono::steady_clock::now() + std::chrono::minutes(5);
  const IlpSolution sol = solver.Solve(model, options);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.objective, exact.objective);
}

}  // namespace
}  // namespace quilt
