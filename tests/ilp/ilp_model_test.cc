#include "src/ilp/ilp_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/ilp/ilp_solver.h"

namespace quilt {
namespace {

TEST(IlpModelTest, VariableAccessors) {
  IlpModel model;
  const int a = model.AddBinaryVar("alpha", /*branch_priority=*/3, /*preferred_value=*/1);
  const int b = model.AddBinaryVar("beta");
  EXPECT_EQ(model.num_vars(), 2);
  EXPECT_EQ(model.var_name(a), "alpha");
  EXPECT_EQ(model.branch_priority(a), 3);
  EXPECT_EQ(model.preferred_value(a), 1);
  EXPECT_EQ(model.branch_priority(b), 0);
  EXPECT_EQ(model.preferred_value(b), 0);
}

TEST(IlpModelTest, ObjectiveDefaultsToZero) {
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  EXPECT_EQ(model.objective_coef(a), 0.0);
  model.SetObjectiveCoef(a, 2.5);
  EXPECT_EQ(model.objective_coef(a), 2.5);
}

TEST(IlpModelTest, ConstraintStorage) {
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  const int b = model.AddBinaryVar("b");
  const int c1 = model.AddLessEqual({{a, 1.0}, {b, 2.0}}, 2.0);
  const int c2 = model.AddGreaterEqual({{a, 1.0}}, 1.0);
  const int c3 = model.AddEquality({{b, 1.0}}, 0.0);
  EXPECT_EQ(model.num_constraints(), 3);
  EXPECT_EQ(model.constraint(c1).upper, 2.0);
  EXPECT_TRUE(std::isinf(model.constraint(c1).lower));
  EXPECT_EQ(model.constraint(c2).lower, 1.0);
  EXPECT_EQ(model.constraint(c3).lower, model.constraint(c3).upper);
}

TEST(IlpModelTest, PreferredValueSteersTies) {
  // Two symmetric zero-cost variables; with preferred value 1 on a high
  // priority var, the first full assignment found keeps it at 1.
  IlpModel model;
  const int a = model.AddBinaryVar("a", /*branch_priority=*/5, /*preferred_value=*/1);
  const int b = model.AddBinaryVar("b", /*branch_priority=*/0, /*preferred_value=*/0);
  IlpSolver solver;
  const IlpSolution solution = solver.Solve(model);
  ASSERT_EQ(solution.status, IlpStatus::kOptimal);
  EXPECT_EQ(solution.values[a], 1);
  EXPECT_EQ(solution.values[b], 0);
}

TEST(IlpModelTest, BranchPriorityOrdersSearch) {
  // Minimizing b's coefficient: regardless of priorities the optimum holds,
  // but node counts differ. We just check both orders find the optimum.
  for (int priority : {-2, 0, 7}) {
    IlpModel model;
    const int a = model.AddBinaryVar("a", priority, 0);
    const int b = model.AddBinaryVar("b", 0, 0);
    model.SetObjectiveCoef(b, 4.0);
    model.AddGreaterEqual({{a, 1.0}, {b, 1.0}}, 1.0);
    IlpSolver solver;
    const IlpSolution solution = solver.Solve(model);
    ASSERT_EQ(solution.status, IlpStatus::kOptimal);
    EXPECT_EQ(solution.objective, 0.0);
    EXPECT_EQ(solution.values[a], 1);
  }
}

TEST(IlpModelTest, FixVarContradictionIsInfeasible) {
  IlpModel model;
  const int a = model.AddBinaryVar("a");
  model.FixVar(a, 1);
  model.FixVar(a, 0);
  IlpSolver solver;
  EXPECT_EQ(solver.Solve(model).status, IlpStatus::kInfeasible);
}

TEST(IlpModelTest, EmptyModelIsTriviallyOptimal) {
  IlpModel model;
  IlpSolver solver;
  const IlpSolution solution = solver.Solve(model);
  EXPECT_EQ(solution.status, IlpStatus::kOptimal);
  EXPECT_EQ(solution.objective, 0.0);
}

}  // namespace
}  // namespace quilt
