#include "src/ir/ir_module.h"

#include <gtest/gtest.h>

#include "src/ir/linker.h"
#include "src/ir/size_model.h"

namespace quilt {
namespace {

IrFunction MakeFn(const std::string& symbol, Linkage linkage = Linkage::kInternal,
                  int64_t size = 1000) {
  IrFunction fn;
  fn.symbol = symbol;
  fn.lang = Lang::kRust;
  fn.linkage = linkage;
  fn.code_size = size;
  return fn;
}

IrFunction MakeLibFn(const std::string& symbol, const std::string& origin, int64_t size) {
  IrFunction fn = MakeFn(symbol, Linkage::kExternal, size);
  fn.origin = origin;
  return fn;
}

TEST(IrModuleTest, AddAndLookup) {
  IrModule module("m");
  ASSERT_TRUE(module.AddFunction(MakeFn("f")).ok());
  EXPECT_TRUE(module.HasFunction("f"));
  EXPECT_FALSE(module.HasFunction("g"));
  EXPECT_NE(module.GetFunction("f"), nullptr);
  EXPECT_EQ(module.GetFunction("g"), nullptr);
  EXPECT_EQ(module.num_functions(), 1);
}

TEST(IrModuleTest, RejectsDuplicateSymbol) {
  IrModule module("m");
  ASSERT_TRUE(module.AddFunction(MakeFn("f")).ok());
  EXPECT_EQ(module.AddFunction(MakeFn("f")).code(), StatusCode::kAlreadyExists);
}

TEST(IrModuleTest, RejectsEmptySymbol) {
  IrModule module("m");
  EXPECT_FALSE(module.AddFunction(MakeFn("")).ok());
}

TEST(IrModuleTest, RenameUpdatesCallSites) {
  IrModule module("m");
  IrFunction caller = MakeFn("caller");
  caller.calls.push_back(CallInst{CallOpcode::kLocal, "helper", "", 0, false, false});
  ASSERT_TRUE(module.AddFunction(std::move(caller)).ok());
  ASSERT_TRUE(module.AddFunction(MakeFn("helper")).ok());
  ASSERT_TRUE(module.RenameFunction("helper", "helper__x").ok());
  EXPECT_FALSE(module.HasFunction("helper"));
  EXPECT_TRUE(module.HasFunction("helper__x"));
  EXPECT_EQ(module.GetFunction("caller")->calls[0].callee_symbol, "helper__x");
}

TEST(IrModuleTest, RenameUpdatesEntrySymbol) {
  IrModule module("m");
  ASSERT_TRUE(module.AddFunction(MakeFn("entry")).ok());
  module.set_entry_symbol("entry");
  ASSERT_TRUE(module.RenameFunction("entry", "entry2").ok());
  EXPECT_EQ(module.entry_symbol(), "entry2");
}

TEST(IrModuleTest, RenameErrors) {
  IrModule module("m");
  ASSERT_TRUE(module.AddFunction(MakeFn("a")).ok());
  ASSERT_TRUE(module.AddFunction(MakeFn("b")).ok());
  EXPECT_EQ(module.RenameFunction("missing", "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(module.RenameFunction("a", "b").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(module.RenameFunction("a", "a").ok());  // No-op.
}

TEST(IrModuleTest, RemoveFunction) {
  IrModule module("m");
  ASSERT_TRUE(module.AddFunction(MakeFn("f")).ok());
  ASSERT_TRUE(module.RemoveFunction("f").ok());
  EXPECT_FALSE(module.HasFunction("f"));
  EXPECT_EQ(module.RemoveFunction("f").code(), StatusCode::kNotFound);
}

TEST(IrModuleTest, SharedLibDedup) {
  IrModule module("m");
  module.AddSharedLib(SharedLibDep{"libcurl.so.4", 100, 40, false});
  module.AddSharedLib(SharedLibDep{"libcurl.so.4", 999, 1, true});
  ASSERT_EQ(module.shared_libs().size(), 1u);
  EXPECT_EQ(module.shared_libs()[0].size_bytes, 100);
}

TEST(IrModuleTest, CtorDedup) {
  IrModule module("m");
  module.AddCtor(GlobalCtor{"curl_global_init", true});
  module.AddCtor(GlobalCtor{"curl_global_init", true});
  EXPECT_EQ(module.ctors().size(), 1u);
}

TEST(IrModuleTest, VerifyCatchesDanglingLocalCall) {
  IrModule module("m");
  IrFunction fn = MakeFn("f");
  fn.calls.push_back(CallInst{CallOpcode::kLocal, "missing", "", 0, false, false});
  ASSERT_TRUE(module.AddFunction(std::move(fn)).ok());
  EXPECT_FALSE(module.Verify().ok());
}

TEST(IrModuleTest, VerifyCatchesMissingEntry) {
  IrModule module("m");
  module.set_entry_symbol("nope");
  EXPECT_FALSE(module.Verify().ok());
}

TEST(IrModuleTest, VerifyCatchesInvokeWithoutHandle) {
  IrModule module("m");
  IrFunction fn = MakeFn("f");
  fn.calls.push_back(CallInst{CallOpcode::kSyncInvoke, "", "", 0, false, false});
  ASSERT_TRUE(module.AddFunction(std::move(fn)).ok());
  EXPECT_FALSE(module.Verify().ok());
}

TEST(IrModuleTest, TotalCodeSize) {
  IrModule module("m");
  ASSERT_TRUE(module.AddFunction(MakeFn("a", Linkage::kInternal, 100)).ok());
  ASSERT_TRUE(module.AddFunction(MakeFn("b", Linkage::kInternal, 250)).ok());
  EXPECT_EQ(module.TotalCodeSize(), 350);
}

TEST(LinkerTest, LinksDisjointModules) {
  IrModule dst("dst");
  ASSERT_TRUE(dst.AddFunction(MakeFn("a")).ok());
  IrModule src("src");
  ASSERT_TRUE(src.AddFunction(MakeFn("b")).ok());
  LinkStats stats;
  ASSERT_TRUE(LinkInto(dst, src, &stats).ok());
  EXPECT_TRUE(dst.HasFunction("a"));
  EXPECT_TRUE(dst.HasFunction("b"));
  EXPECT_EQ(stats.functions_added, 1);
}

TEST(LinkerTest, DeduplicatesIdenticalLibraryCode) {
  IrModule dst("dst");
  ASSERT_TRUE(dst.AddFunction(MakeLibFn("rt.rust.core", "libstd-1.79", 960)).ok());
  IrModule src("src");
  ASSERT_TRUE(src.AddFunction(MakeLibFn("rt.rust.core", "libstd-1.79", 960)).ok());
  LinkStats stats;
  ASSERT_TRUE(LinkInto(dst, src, &stats).ok());
  EXPECT_EQ(stats.functions_deduplicated, 1);
  EXPECT_EQ(stats.bytes_deduplicated, 960);
  EXPECT_EQ(dst.num_functions(), 1);
}

TEST(LinkerTest, RejectsConflictingUserSymbols) {
  IrModule dst("dst");
  ASSERT_TRUE(dst.AddFunction(MakeFn("main")).ok());
  IrModule src("src");
  ASSERT_TRUE(src.AddFunction(MakeFn("main")).ok());
  EXPECT_FALSE(LinkInto(dst, src).ok());
}

TEST(LinkerTest, RejectsLibraryVersionSkew) {
  IrModule dst("dst");
  ASSERT_TRUE(dst.AddFunction(MakeLibFn("rt.rust.serde", "serde-1.0", 100)).ok());
  IrModule src("src");
  ASSERT_TRUE(src.AddFunction(MakeLibFn("rt.rust.serde", "serde-2.0", 100)).ok());
  EXPECT_FALSE(LinkInto(dst, src).ok());
}

TEST(LinkerTest, EagerSharedLibWinsOverLazy) {
  IrModule dst("dst");
  dst.AddSharedLib(SharedLibDep{"libx.so", 10, 0, true});
  IrModule src("src");
  src.AddSharedLib(SharedLibDep{"libx.so", 10, 0, false});
  ASSERT_TRUE(LinkInto(dst, src).ok());
  EXPECT_FALSE(dst.shared_libs()[0].lazy);
}

TEST(SizeModelTest, CountsCodeAndLibs) {
  IrModule module("m");
  ASSERT_TRUE(module.AddFunction(MakeFn("f", Linkage::kExternal, 1000)).ok());
  module.AddSharedLib(SharedLibDep{"libc.so.6", 500, 2, false});
  module.AddSharedLib(SharedLibDep{"libcurl.so.4", 600, 40, true});
  const BinaryImage image = ComputeBinaryImage(module);
  EXPECT_EQ(image.size_bytes, kElfOverheadBytes + 1000);
  EXPECT_EQ(image.eager_libs, 3);   // libc + 2 transitive.
  EXPECT_EQ(image.lazy_libs, 41);   // libcurl + 40 transitive.
  EXPECT_EQ(image.eager_lib_bytes, 500);
}

}  // namespace
}  // namespace quilt
