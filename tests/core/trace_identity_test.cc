// Regression tests for cross-workflow span bleed (trace identity).
//
// Two workflows share the handle "shared-svc". Workflow A never makes
// shared-svc call its leaf (data-dependent count 0); workflow B always does.
// Before spans carried trace ids, BuildCallGraphFromTraces aggregated every
// shared-svc->leaf-b span into *both* workflows' graphs, so workflow A's
// graph grew an edge it never executed. With per-request trace identity the
// builder only aggregates spans belonging to the workflow's own traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/core/quilt_controller.h"
#include "src/tracing/trace_assembler.h"

namespace quilt {
namespace {

struct Harness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller;

  Harness() : controller(&sim, &platform) {}
};

// One app holding both workflows: root-a -> shared-svc, root-b -> shared-svc,
// and shared-svc -> leaf-b with a data-dependent count taken from the request
// payload's "num" field (0 for workflow A, 2 for workflow B).
WorkflowApp SharedHandleApp() {
  WorkflowApp app;
  app.name = "shared-handle";
  app.root_handle = "root-a";

  AppFunctionSpec root_a;
  root_a.handle = "root-a";
  root_a.steps = {ComputeStep{0.2}, CallStep{{CallItem{"shared-svc", 1, false}}, false}};
  app.functions.push_back(root_a);

  AppFunctionSpec root_b;
  root_b.handle = "root-b";
  root_b.steps = {ComputeStep{0.2}, CallStep{{CallItem{"shared-svc", 1, false}}, false}};
  app.functions.push_back(root_b);

  AppFunctionSpec shared;
  shared.handle = "shared-svc";
  shared.steps = {ComputeStep{0.3},
                  CallStep{{CallItem{"leaf-b", 1, /*data_dependent=*/true}}, false}};
  app.functions.push_back(shared);

  AppFunctionSpec leaf;
  leaf.handle = "leaf-b";
  leaf.steps = {ComputeStep{0.25}};
  app.functions.push_back(leaf);
  return app;
}

Json PayloadWithNum(int64_t num) {
  Json payload = Json::MakeObject();
  payload["num"] = num;
  return payload;
}

// Fires `count` requests at each root, interleaved at the same sim times so
// the two workflows genuinely run concurrently. RunUntil, not Run: the
// profiling resource monitor keeps rescheduling itself, so the event queue
// never drains while profiling is on.
void DriveBothWorkflows(Harness& h, int count) {
  for (int i = 0; i < count; ++i) {
    const SimTime at = h.sim.now() + Milliseconds(5) * i;
    h.sim.ScheduleAt(at, [&h] {
      h.platform.Invoke({.caller = kClientCaller,
                         .callee = "root-a",
                         .parent = {},
                         .payload = PayloadWithNum(0),
                         .async = false,
                         .done = [](Result<Json> result) { ASSERT_TRUE(result.ok()); }});
    });
    h.sim.ScheduleAt(at, [&h] {
      h.platform.Invoke({.caller = kClientCaller,
                         .callee = "root-b",
                         .parent = {},
                         .payload = PayloadWithNum(2),
                         .async = false,
                         .done = [](Result<Json> result) { ASSERT_TRUE(result.ok()); }});
    });
  }
  h.sim.RunUntil(h.sim.now() + Milliseconds(5) * count + Seconds(5));
}

std::string CanonicalGraph(const CallGraph& graph) {
  std::vector<std::string> lines;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const FunctionNode& n = graph.node(id);
    lines.push_back(StrCat("node ", n.name, " cpu=", n.cpu, " mem=", n.memory));
  }
  for (const CallEdge& e : graph.edges()) {
    lines.push_back(StrCat("edge ", graph.node(e.from).name, "->", graph.node(e.to).name,
                           " alpha=", e.alpha, " w=", e.weight,
                           " async=", e.type == CallType::kAsync));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

TEST(TraceIdentityTest, SharedFunctionDoesNotBleedAcrossWorkflows) {
  Harness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(SharedHandleApp()).ok());
  h.controller.StartProfiling();
  DriveBothWorkflows(h, 20);
  h.controller.StopProfiling();

  // Workflow A: shared-svc executed but never called leaf-b. Before trace
  // identity, root-b's shared-svc->leaf-b spans bled into this graph.
  Result<CallGraph> graph_a = h.controller.BuildCallGraph("root-a");
  ASSERT_TRUE(graph_a.ok()) << graph_a.status().ToString();
  EXPECT_EQ(graph_a->FindNode("leaf-b"), -1)
      << "workflow A's graph contains workflow B's leaf: cross-workflow bleed";
  EXPECT_NE(graph_a->FindNode("shared-svc"), -1);
  EXPECT_EQ(graph_a->num_nodes(), 2);

  // Workflow B keeps its own edge, with the per-request call count intact.
  Result<CallGraph> graph_b = h.controller.BuildCallGraph("root-b");
  ASSERT_TRUE(graph_b.ok()) << graph_b.status().ToString();
  const NodeId shared = graph_b->FindNode("shared-svc");
  const NodeId leaf = graph_b->FindNode("leaf-b");
  ASSERT_NE(shared, -1);
  ASSERT_NE(leaf, -1);
  EXPECT_EQ(graph_b->FindNode("root-a"), -1);
  const EdgeId edge = graph_b->FindEdge(shared, leaf);
  ASSERT_NE(edge, -1);
  EXPECT_EQ(graph_b->edge(edge).alpha, 2);
}

TEST(TraceIdentityTest, EachRequestRootsOneWellFormedTraceTree) {
  Harness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(SharedHandleApp()).ok());
  h.controller.StartProfiling();
  DriveBothWorkflows(h, 10);
  h.controller.StopProfiling();

  const std::vector<Trace> traces = h.controller.CollectTraces();
  ASSERT_EQ(traces.size(), 20u);  // One trace per client request.

  int a_traces = 0;
  int b_traces = 0;
  for (const Trace& trace : traces) {
    ASSERT_TRUE(trace.complete());
    const Span& root = trace.root();
    EXPECT_EQ(root.caller, kClientCaller);
    EXPECT_EQ(root.parent_span_id, 0);

    std::set<int64_t> ids;
    for (const Span& span : trace.spans) {
      EXPECT_EQ(span.trace_id, trace.trace_id);
      EXPECT_TRUE(ids.insert(span.span_id).second) << "duplicate span id";
    }
    // Every non-root span hangs off another span of the same trace: the
    // causal chain survives the gateway hop and nested invocations.
    for (const Span& span : trace.spans) {
      if (span.span_id == root.span_id) {
        continue;
      }
      EXPECT_TRUE(ids.count(span.parent_span_id) == 1)
          << "orphan span " << span.callee << " in trace " << trace.trace_id;
    }

    if (trace.workflow() == "root-a") {
      ++a_traces;
      EXPECT_EQ(trace.spans.size(), 2u);  // client->root-a, root-a->shared.
      for (const Span& span : trace.spans) {
        EXPECT_NE(span.callee, "leaf-b") << "workflow B's span inside workflow A's trace";
      }
    } else {
      ASSERT_EQ(trace.workflow(), "root-b");
      ++b_traces;
      EXPECT_EQ(trace.spans.size(), 4u);  // ... plus shared->leaf-b twice.
    }
  }
  EXPECT_EQ(a_traces, 10);
  EXPECT_EQ(b_traces, 10);
}

TEST(TraceIdentityTest, PerTraceCallGraphsAreDeterministic) {
  auto run = [] {
    Harness h;
    EXPECT_TRUE(h.controller.RegisterWorkflow(SharedHandleApp()).ok());
    h.controller.StartProfiling();
    DriveBothWorkflows(h, 12);
    h.controller.StopProfiling();
    Result<CallGraph> a = h.controller.BuildCallGraph("root-a");
    Result<CallGraph> b = h.controller.BuildCallGraph("root-b");
    EXPECT_TRUE(a.ok() && b.ok());
    return CanonicalGraph(*a) + "--\n" + CanonicalGraph(*b);
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same seed, different call graphs";
}

TEST(TraceIdentityTest, SpanSegmentsAreBoundedByDuration) {
  Harness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(SharedHandleApp()).ok());
  h.controller.StartProfiling();
  DriveBothWorkflows(h, 5);
  h.controller.StopProfiling();

  for (const Trace& trace : h.controller.CollectTraces()) {
    for (const Span& span : trace.spans) {
      EXPECT_EQ(span.status, SpanStatus::kOk);
      EXPECT_GT(span.end_time, span.timestamp);
      const SimDuration overhead =
          span.network_ns + span.gateway_ns + span.queue_ns + span.cold_start_ns;
      EXPECT_GE(overhead, 0);
      EXPECT_LE(overhead, span.duration())
          << span.callee << ": recorded overhead exceeds the span's wall time";
    }
  }
}

}  // namespace
}  // namespace quilt
