#include "src/core/quilt_controller.h"

#include <gtest/gtest.h>

#include "src/apps/deathstarbench.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

struct Harness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller;

  explicit Harness(ControllerOptions options = {}) : controller(&sim, &platform, options) {}
};

LoadResult RunLoad(Harness& h, const std::string& target, SimDuration duration = Seconds(20),
                   int connections = 1) {
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.connections = connections;
  options.warmup = Seconds(3);
  options.duration = duration;
  return generator.Run(&h.sim, &h.platform, target, options);
}

TEST(ControllerTest, RegisterDeploysEveryFunction) {
  Harness h;
  const WorkflowApp app = ComposePost(false);
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  for (const AppFunctionSpec& fn : app.functions) {
    EXPECT_TRUE(h.platform.HasDeployment(fn.handle)) << fn.handle;
  }
  EXPECT_EQ(h.controller.RegisterWorkflow(app).code(), StatusCode::kAlreadyExists);
}

TEST(ControllerTest, ProfilingBuildsFaithfulCallGraph) {
  Harness h;
  const WorkflowApp app = ComposePost(false);
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  h.controller.StartProfiling();
  const LoadResult load = RunLoad(h, "compose-post");
  ASSERT_GT(load.completed, 10);
  h.controller.StopProfiling();

  Result<CallGraph> graph = h.controller.BuildCallGraph("compose-post");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(graph->Validate().ok());
  // Every function executed (no data-dependent branches here): full graph.
  EXPECT_EQ(graph->num_nodes(), 11);
  EXPECT_EQ(graph->num_edges(), 10);
  for (const CallEdge& e : graph->edges()) {
    EXPECT_EQ(e.alpha, 1) << graph->node(e.from).name << "->" << graph->node(e.to).name;
  }
  // Measured resource labels stay within the regime the paper reports:
  // small functions, far below the container limits.
  for (NodeId id = 0; id < graph->num_nodes(); ++id) {
    EXPECT_LT(graph->node(id).cpu, 0.7) << graph->node(id).name;
    EXPECT_LT(graph->node(id).memory, 32.0) << graph->node(id).name;
    EXPECT_GT(graph->node(id).cpu, 0.0) << graph->node(id).name;
  }
}

TEST(ControllerTest, EndToEndOptimizeMergesWholeWorkflowAndImprovesLatency) {
  Harness h;
  const WorkflowApp app = ComposePost(false);
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());

  // Baseline measurement.
  const LoadResult baseline = RunLoad(h, "compose-post");
  ASSERT_GT(baseline.completed, 10);

  // Profile window.
  h.controller.StartProfiling();
  RunLoad(h, "compose-post", Seconds(15));
  h.controller.StopProfiling();

  // Decide + merge + deploy.
  Result<MergeSolution> solution = h.controller.OptimizeWorkflow("compose-post");
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->num_groups(), 1);  // §7.3.1: whole workflow merges.

  // Merged measurement: median latency improves substantially (paper:
  // 45.63%-70.95%).
  const LoadResult merged = RunLoad(h, "compose-post");
  ASSERT_GT(merged.completed, 10);
  EXPECT_LT(merged.latency.Median(), baseline.latency.Median() * 0.7)
      << "baseline=" << FormatDuration(baseline.latency.Median())
      << " merged=" << FormatDuration(merged.latency.Median());
}

TEST(ControllerTest, RollbackRestoresBaselineBehavior) {
  Harness h;
  const WorkflowApp app = ReadHomeTimeline();
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  const LoadResult before = RunLoad(h, "read-home-timeline", Seconds(10));

  h.controller.StartProfiling();
  RunLoad(h, "read-home-timeline", Seconds(10));
  h.controller.StopProfiling();
  ASSERT_TRUE(h.controller.OptimizeWorkflow("read-home-timeline").ok());
  const LoadResult merged = RunLoad(h, "read-home-timeline", Seconds(10));
  EXPECT_LT(merged.latency.Median(), before.latency.Median());

  ASSERT_TRUE(h.controller.Rollback("read-home-timeline").ok());
  const LoadResult rolled_back = RunLoad(h, "read-home-timeline", Seconds(10));
  // Back to remote invocations: latency returns to (roughly) baseline.
  EXPECT_GT(rolled_back.latency.Median(), merged.latency.Median());
  EXPECT_EQ(h.controller.Rollback("ghost").code(), StatusCode::kNotFound);
}

TEST(ControllerTest, DeploySolutionDirectPinsGrouping) {
  // §7.4.1 limits: 1.6 vCPU / 320 MB.
  ControllerOptions options;
  options.container_cpu_limit = 1.6;
  options.container_memory_limit_mb = 320.0;
  Harness h(options);
  const WorkflowApp app = ModifiedNearbyCinema();
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());

  // Pin the optimal 2-way split from §7.4.1.
  MergeSolution split;
  MergeGroup g1;
  g1.root = graph->FindNode("nearby-cinema-mod");
  g1.members = {g1.root, graph->FindNode("nearby-agg-1"), graph->FindNode("gnp-1"),
                graph->FindNode("gnp-2"), graph->FindNode("gnp-3")};
  MergeGroup g2;
  g2.root = graph->FindNode("nearby-agg-2");
  g2.members = {g2.root, graph->FindNode("gnp-4"), graph->FindNode("gnp-5"),
                graph->FindNode("gnp-6")};
  split.groups = {g1, g2};
  ASSERT_TRUE(h.controller.DeploySolutionDirect(app, split).ok());

  const LoadResult load = RunLoad(h, "nearby-cinema-mod", Seconds(10));
  EXPECT_GT(load.completed, 5);
  EXPECT_EQ(load.failed, 0);
}

TEST(ControllerTest, ConditionalInvocationSurvivesUnderestimatedFanOut) {
  // Container provisioned for a fan-out of 8 (§7.6): 8 x 26 MB instances fit
  // in 256 MB, a 9th would not.
  ControllerOptions options;
  options.container_memory_limit_mb = 256.0;
  Harness h(options);
  const WorkflowApp app = FanOutApp(/*profiled_alpha=*/8);
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(h.controller.DeploySolutionDirect(app, FullMergeSolution(*graph)).ok());

  // num=12 exceeds the profiled budget of 8: 8 local + 4 remote fallbacks.
  Json payload = Json::MakeObject();
  payload["num"] = 12;
  Result<Json> response = InternalError("no response");
  h.platform.Invoke({.caller = kClientCaller,
                     .callee = "fan-out-root",
                     .parent = {},
                     .payload = payload,
                     .async = false,
                     .done = [&](Result<Json> r) { response = std::move(r); }});
  h.sim.Run();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // The standalone callee deployment served the fallback calls.
  EXPECT_EQ(h.platform.StatsFor("fan-callee")->completed, 4);
}

TEST(ControllerTest, ContainerMergeBaselineDeploys) {
  Harness h;
  const WorkflowApp app = ComposePost(false);
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  ASSERT_TRUE(h.controller.DeployContainerMerge(app, /*memory_limit_mb=*/256.0).ok());
  const LoadResult load = RunLoad(h, "compose-post", Seconds(10));
  EXPECT_GT(load.completed, 5);
}

TEST(ControllerTest, BuildCallGraphWithoutProfilingFails) {
  Harness h;
  const WorkflowApp app = ReadUserReview();
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  RunLoad(h, "read-user-review", Seconds(5));  // Profiling off: no spans.
  EXPECT_FALSE(h.controller.BuildCallGraph("read-user-review").ok());
}

}  // namespace
}  // namespace quilt
