// API-surface migration guarantees: the consolidated Invoke(InvokeRequest&&)
// entry point is byte-identical to the legacy positional shims it replaced,
// and the MetricsView facade returns exactly what the controller methods it
// wraps return.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/apps/deathstarbench.h"
#include "src/common/strings.h"
#include "src/core/quilt_controller.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

enum class InvokeForm {
  kRequest,        // Invoke(InvokeRequest&&): the consolidated entry point.
  kLegacy,         // Invoke(caller, callee, payload, async, done) shim.
  kLegacyTraced,   // Invoke(caller, callee, parent, payload, async, done) shim.
};

// Drives the same fixed-schedule workload through one of the three Invoke
// forms and serializes everything observable about the run. The simulation
// is deterministic, so two forms that hit the same code path must agree
// byte for byte.
std::string RunWorkload(InvokeForm form) {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller(&sim, &platform, {});
  EXPECT_TRUE(controller.RegisterWorkflow(FanOutApp(4)).ok());
  controller.StartProfiling();

  Json payload = Json::MakeObject();
  payload["num"] = 2;
  int completed = 0;
  int failed = 0;
  auto done = [&](Result<Json> r) { r.ok() ? ++completed : ++failed; };
  for (int i = 0; i < 40; ++i) {
    sim.Schedule(Milliseconds(50 * i), [&, form] {
      switch (form) {
        case InvokeForm::kRequest:
          platform.Invoke({.caller = kClientCaller,
                           .callee = "fan-out-root",
                           .parent = {},
                           .payload = payload,
                           .async = false,
                           .done = done});
          break;
        case InvokeForm::kLegacy:
          platform.Invoke(kClientCaller, "fan-out-root", payload, false, done);
          break;
        case InvokeForm::kLegacyTraced:
          platform.Invoke(TraceContext{}, kClientCaller, "fan-out-root", payload, false, done);
          break;
      }
    });
  }
  sim.RunUntil(Seconds(10));
  controller.StopProfiling();
  sim.Run();

  Result<WorkflowLatencySummary> summary = controller.SummarizeWorkflowLatency("fan-out-root");
  EXPECT_TRUE(summary.ok());
  const DeploymentStats* root = platform.StatsFor("fan-out-root");
  EXPECT_NE(root, nullptr);
  return StrCat("completed=", completed, " failed=", failed, " traces=", summary->traces,
                " p50=", summary->end_to_end.p50, " p99=", summary->end_to_end.p99,
                " root_completed=", root->completed, " containers=", platform.TotalContainers(),
                " end=", sim.now());
}

TEST(ApiMigrationTest, InvokeFormsAreByteIdentical) {
  const std::string request_form = RunWorkload(InvokeForm::kRequest);
  EXPECT_GT(request_form.size(), 40u);
  EXPECT_EQ(RunWorkload(InvokeForm::kLegacy), request_form);
  EXPECT_EQ(RunWorkload(InvokeForm::kLegacyTraced), request_form);
}

TEST(ApiMigrationTest, MetricsViewMatchesControllerMethods) {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  ControllerOptions options;
  options.max_nodes = 2;
  options.node_cpu = 8.0;
  options.node_memory_mb = 2048.0;
  QuiltController controller(&sim, &platform, options);
  ASSERT_TRUE(controller.RegisterWorkflow(FanOutApp(4)).ok());
  controller.StartProfiling();

  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options load;
  load.connections = 2;
  load.warmup = Seconds(1);
  load.duration = Seconds(8);
  generator.Run(&sim, &platform, "fan-out-root", load);
  controller.StopProfiling();
  ASSERT_TRUE(controller.OptimizeWorkflow("fan-out-root").ok());

  MetricsView metrics = controller.metrics();

  // Trace collection is a window query, not a drain: the facade and the
  // direct call see the same traces.
  EXPECT_EQ(metrics.CollectTraces().size(), controller.CollectTraces().size());

  Result<WorkflowLatencySummary> direct = controller.SummarizeWorkflowLatency("fan-out-root");
  Result<WorkflowLatencySummary> viewed = metrics.SummarizeWorkflowLatency("fan-out-root");
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(viewed.ok());
  EXPECT_EQ(viewed->traces, direct->traces);
  EXPECT_EQ(viewed->end_to_end.p99, direct->end_to_end.p99);

  // Record streams come from the same store the controller owns.
  EXPECT_EQ(&metrics.decisions(), &controller.metrics_store()->decisions());
  EXPECT_EQ(&metrics.adaptations(), &controller.metrics_store()->adaptations());
  EXPECT_EQ(&metrics.node_samples(), &controller.metrics_store()->node_samples());
  EXPECT_EQ(&metrics.cost_records(), &controller.metrics_store()->cost_records());
  EXPECT_FALSE(metrics.decisions().empty());
  EXPECT_FALSE(metrics.node_samples().empty());

  const QuiltController::CostReport report = metrics.CollectCostReport();
  EXPECT_EQ(report.infra_nanos,
            platform.cost_meter()
                .InfraCostFromNodes(controller.metrics_store()->node_samples())
                .node_nanos);
}

// Misconfigured controller options surface as a typed status on the API
// surface, not a crash deep in the decision engine.
TEST(ApiMigrationTest, ControllerOptionsValidateGatesRegistration) {
  ControllerOptions bad;
  bad.cost.cost_weight = 1.5;  // λ outside [0, 1].
  EXPECT_FALSE(bad.Validate().ok());

  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller(&sim, &platform, bad);
  EXPECT_FALSE(controller.options_status().ok());
  EXPECT_EQ(controller.RegisterWorkflow(FanOutApp(4)).code(), StatusCode::kInvalidArgument);

  ControllerOptions conflict;
  conflict.max_nodes = 4;
  conflict.autoscaler.enabled = true;
  EXPECT_FALSE(conflict.Validate().ok());
}

}  // namespace
}  // namespace quilt
