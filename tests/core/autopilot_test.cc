// Autopilot closed-loop adaptation (§4.9): lifecycle under load, quiet
// windows, OOM-storm rollback, record determinism across decision-thread
// counts, and the controller edge cases the canary plumbing introduced.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/apps/deathstarbench.h"
#include "src/autopilot/autopilot.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

constexpr char kRoot[] = "fan-out-root";

ControllerOptions FanOutOptions(int threads = 1) {
  ControllerOptions options;
  options.container_memory_limit_mb = 256.0;
  options.decision_threads = threads;
  return options;
}

AutopilotOptions FastPilotOptions() {
  AutopilotOptions options;
  options.tick_interval = Seconds(5);
  options.min_window_traces = 10;
  options.canary_min_traces = 8;
  options.canary_fraction = 0.3;
  return options;
}

struct Harness {
  Simulation sim;
  Platform platform;
  QuiltController controller;
  Autopilot pilot;

  explicit Harness(ControllerOptions options = FanOutOptions(),
                   PlatformConfig config = {},
                   AutopilotOptions pilot_options = FastPilotOptions())
      : platform(&sim, config),
        controller(&sim, &platform, options),
        pilot(&sim, &controller, pilot_options) {}

  // Steady open-loop fan-out load (payload num=2) for `duration`.
  void DriveLoad(SimDuration duration, double rps = 8.0) {
    OpenLoopGenerator generator;
    OpenLoopGenerator::Options load;
    load.rps = rps;
    load.warmup = 0;
    load.duration = duration;
    load.drain_grace = Seconds(5);
    Json payload = Json::MakeObject();
    payload["num"] = 2;
    load.payload = std::move(payload);
    generator.Run(&sim, &platform, kRoot, load);
  }

  std::vector<std::string> Actions() const {
    std::vector<std::string> actions;
    for (const AdaptationRecord& r : controller.metrics_store()->adaptations()) {
      actions.push_back(r.action);
    }
    return actions;
  }

  std::string Serialized() const {
    std::string out;
    for (const AdaptationRecord& r : controller.metrics_store()->adaptations()) {
      out += AdaptationRecordLine(r);
      out += '\n';
    }
    return out;
  }
};

TEST(AutopilotTest, EnrollValidation) {
  Harness h;
  EXPECT_EQ(h.pilot.Enroll("ghost").code(), StatusCode::kNotFound);
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
  ASSERT_TRUE(h.pilot.Enroll(kRoot).ok());
  EXPECT_EQ(h.pilot.Enroll(kRoot).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(h.pilot.StateOf("ghost").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(h.pilot.StateOf(kRoot).ok());
  EXPECT_EQ(*h.pilot.StateOf(kRoot), WorkflowState::kRegistered);
}

TEST(AutopilotTest, LifecyclePromotesUnderLoad) {
  Harness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
  ASSERT_TRUE(h.pilot.Enroll(kRoot).ok());
  h.pilot.Start();
  h.DriveLoad(Seconds(25));
  h.pilot.Stop();

  ASSERT_TRUE(h.pilot.StateOf(kRoot).ok());
  EXPECT_EQ(*h.pilot.StateOf(kRoot), WorkflowState::kMonitoring);
  // The lifecycle prefix is fixed: enroll, first tick starts profiling, a
  // full window decides + stages, the guard window promotes.
  const std::vector<std::string> actions = h.Actions();
  ASSERT_GE(actions.size(), 5u);
  EXPECT_EQ(actions[0], "register");
  EXPECT_EQ(actions[1], "profile");
  EXPECT_EQ(actions[2], "decide");
  EXPECT_EQ(actions[3], "stage-canary");
  EXPECT_EQ(actions[4], "promote");
  EXPECT_TRUE(h.controller.HasMergedDeployment(kRoot));
  EXPECT_FALSE(h.controller.HasStagedCanary(kRoot));
}

TEST(AutopilotTest, QuietWindowsHoldInProfiling) {
  Harness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
  ASSERT_TRUE(h.pilot.Enroll(kRoot).ok());
  h.pilot.Start();
  h.sim.RunUntil(h.sim.now() + Seconds(30));  // No traffic at all.
  h.pilot.Stop();

  ASSERT_TRUE(h.pilot.StateOf(kRoot).ok());
  EXPECT_EQ(*h.pilot.StateOf(kRoot), WorkflowState::kProfiling);
  for (const std::string& action : h.Actions()) {
    EXPECT_TRUE(action == "register" || action == "profile") << action;
  }
  EXPECT_FALSE(h.controller.HasMergedDeployment(kRoot));
}

TEST(AutopilotTest, OomStormRollsBackAutomatically) {
  PlatformConfig config;
  FaultRule rule;
  rule.kind = FaultKind::kOomKill;
  rule.deployment = kRoot;
  rule.probability = 1.0;
  rule.window_start = Seconds(20);  // After the expected promote (~15s).
  rule.window_end = Seconds(30);
  rule.max_faults = 4;
  config.fault_plan.seed = 3;
  config.fault_plan.rules = {rule};

  Harness h(FanOutOptions(), config);
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
  ASSERT_TRUE(h.pilot.Enroll(kRoot).ok());
  h.pilot.Start();
  h.DriveLoad(Seconds(30));
  h.pilot.Stop();

  const std::vector<AdaptationRecord> records = h.controller.metrics_store()->adaptations();
  const AdaptationRecord* promote = nullptr;
  const AdaptationRecord* rollback = nullptr;
  for (const AdaptationRecord& r : records) {
    if (promote == nullptr && r.action == "promote") {
      promote = &r;
    }
    if (rollback == nullptr && r.action == "rollback") {
      rollback = &r;
    }
  }
  ASSERT_NE(promote, nullptr);
  ASSERT_NE(rollback, nullptr);
  EXPECT_EQ(rollback->detector, "oom-kill");
  EXPECT_GT(rollback->virtual_time, promote->virtual_time);
  // Bounded reaction: within 3 control ticks of the storm opening.
  EXPECT_LE(rollback->virtual_time, rule.window_start + 3 * h.pilot.options().tick_interval);
  EXPECT_FALSE(h.controller.HasMergedDeployment(kRoot));
}

TEST(AutopilotTest, RecordsDeterministicAcrossDecisionThreads) {
  auto run = [](int threads) {
    Harness h(FanOutOptions(threads));
    EXPECT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
    EXPECT_TRUE(h.pilot.Enroll(kRoot).ok());
    h.pilot.Start();
    h.DriveLoad(Seconds(25));
    h.pilot.Stop();
    return h.Serialized();
  };
  const std::string reference = run(1);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(run(1), reference);  // Repeatable at the same width.
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(8), reference);
}

// --- Controller edge cases around the canary plumbing.

struct ControllerHarness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller;
  explicit ControllerHarness(ControllerOptions options = FanOutOptions())
      : controller(&sim, &platform, options) {}

  void ProfileFanOut(int num, int requests = 40) {
    controller.StartProfiling();
    Json payload = Json::MakeObject();
    payload["num"] = num;
    for (int i = 0; i < requests; ++i) {
      platform.Invoke({.caller = kClientCaller,
                       .callee = kRoot,
                       .parent = {},
                       .payload = payload,
                       .async = false,
                       .done = [](Result<Json>) {}});
    }
    sim.RunUntil(sim.now() + Seconds(5));
    controller.StopProfiling();
  }

  // Proposes and stages a canary from a fresh profile window.
  void StageCanaryFromProfile(int num) {
    ProfileFanOut(num);
    Result<QuiltController::ProposedPlan> plan = controller.ProposePlan(kRoot);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(plan->changed);
    ASSERT_TRUE(controller.StageCanaryPlan(kRoot, *plan, 0.3).ok());
  }
};

TEST(ReconsiderEdgeTest, BlockedWhileCanaryInFlight) {
  ControllerHarness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
  h.StageCanaryFromProfile(2);
  ASSERT_TRUE(h.controller.HasStagedCanary(kRoot));

  // ProposePlan promoted nothing yet: no merged deployment, and the in-flight
  // guard window blocks a manual reconsider from racing it.
  const Result<QuiltController::ReconsiderReport> report =
      h.controller.ReconsiderWorkflow(kRoot);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(h.controller.PromoteCanaryPlan(kRoot).ok());
  EXPECT_FALSE(h.controller.HasStagedCanary(kRoot));
  EXPECT_TRUE(h.controller.HasMergedDeployment(kRoot));
  h.ProfileFanOut(2);
  EXPECT_TRUE(h.controller.ReconsiderWorkflow(kRoot).ok());
}

TEST(ReconsiderEdgeTest, RevokingPermissionAbortsStagedCanary) {
  ControllerHarness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
  h.StageCanaryFromProfile(2);
  ASSERT_TRUE(h.controller.HasStagedCanary(kRoot));

  ASSERT_TRUE(h.controller.RevokeMergePermission("fan-callee").ok());
  EXPECT_FALSE(h.controller.HasStagedCanary(kRoot));
  // The baseline keeps serving after the abort.
  bool ok = false;
  Json payload = Json::MakeObject();
  payload["num"] = 2;
  h.platform.Invoke({.caller = kClientCaller,
                     .callee = kRoot,
                     .parent = {},
                     .payload = payload,
                     .async = false,
                     .done = [&](Result<Json> r) { ok = r.ok(); }});
  h.sim.RunUntil(h.sim.now() + Seconds(5));
  EXPECT_TRUE(ok);
}

TEST(ReconsiderEdgeTest, EmptyProfileWindowKeepsMergeQuietly) {
  ControllerHarness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
  h.ProfileFanOut(2);
  ASSERT_TRUE(h.controller.OptimizeWorkflow(kRoot).ok());

  // A window with zero traffic must not be read as drift (or worse, as
  // misbehavior): the deployed graph stands in for the missing observations.
  h.controller.StartProfiling();
  h.sim.RunUntil(h.sim.now() + Seconds(5));
  h.controller.StopProfiling();
  const Result<QuiltController::ReconsiderReport> report =
      h.controller.ReconsiderWorkflow(kRoot);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->redeployed);
  EXPECT_FALSE(report->rolled_back);
}

TEST(ReconsiderEdgeTest, UnchangedSignatureIsANoOp) {
  ControllerHarness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
  h.ProfileFanOut(2);
  ASSERT_TRUE(h.controller.OptimizeWorkflow(kRoot).ok());

  // Same workload shape re-profiled: the proposed plan's signature matches
  // the deployed one, so ProposePlan reports "unchanged" and a manual
  // reconsider neither redeploys nor rolls back.
  h.ProfileFanOut(2);
  Result<QuiltController::ProposedPlan> plan = h.controller.ProposePlan(kRoot);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->changed);
  EXPECT_EQ(h.controller.StageCanaryPlan(kRoot, *plan, 0.3).code(),
            StatusCode::kFailedPrecondition);
  const Result<QuiltController::ReconsiderReport> report =
      h.controller.ReconsiderWorkflow(kRoot);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->redeployed);
  EXPECT_FALSE(report->rolled_back);
}

TEST(SummaryStatusTest, TypedStatusesForLatencySummary) {
  ControllerHarness h;
  // Unknown workflow: not found.
  EXPECT_EQ(h.controller.SummarizeWorkflowLatency("ghost").status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(4)).ok());
  // Registered but an empty window: "wait", not an alarm.
  h.controller.StartProfiling();
  const Result<WorkflowLatencySummary> empty = h.controller.SummarizeWorkflowLatency(kRoot);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kUnavailable);

  // With traffic, the unfiltered summary works; the canary-only view of an
  // all-control window is unavailable (no canary traffic), not an error.
  h.controller.StopProfiling();
  h.ProfileFanOut(2);
  const Result<WorkflowLatencySummary> all = h.controller.SummarizeWorkflowLatency(kRoot);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_GT(all->traces, 0);
  EXPECT_EQ(all->version, "all");
  const Result<WorkflowLatencySummary> canary_only =
      h.controller.SummarizeWorkflowLatency(kRoot, TraceVersionFilter::kCanary);
  ASSERT_FALSE(canary_only.ok());
  EXPECT_EQ(canary_only.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(canary_only.status().message().find("canary"), std::string::npos);
}

}  // namespace
}  // namespace quilt
