// The failure-handling limitation the paper calls out (§1, Limitations):
// with per-function containers a crashing callee produces an error response
// the caller can handle; once the workflow is one process, any function
// crash becomes a workflow crash.
#include <gtest/gtest.h>

#include "src/apps/app.h"
#include "src/core/quilt_controller.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

// root -> fragile -> (crashes on poisoned payloads).
WorkflowApp FragileWorkflow() {
  WorkflowApp app;
  app.name = "fragile";
  app.root_handle = "fragile-root";

  AppFunctionSpec root;
  root.handle = "fragile-root";
  root.steps = {ComputeStep{0.3},
                CallStep{{CallItem{"fragile-leaf", 1, false}}, /*parallel=*/false},
                ComputeStep{0.2}};
  app.functions.push_back(root);

  AppFunctionSpec leaf;
  leaf.handle = "fragile-leaf";
  leaf.steps = {ComputeStep{0.3}, CrashStep{/*only_on_poison=*/true}, ComputeStep{0.2}};
  app.functions.push_back(leaf);
  return app;
}

struct Harness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller{&sim, &platform};
};

Result<Json> InvokeOnce(Harness& h, const Json& payload) {
  Result<Json> response = InternalError("no response");
  h.platform.Invoke({.caller = kClientCaller,
                     .callee = "fragile-root",
                     .parent = {},
                     .payload = payload,
                     .async = false,
                     .done = [&](Result<Json> r) { response = std::move(r); }});
  h.sim.RunUntil(h.sim.now() + Seconds(5));
  return response;
}

TEST(FaultIsolationTest, BaselineIsolatesCalleeCrash) {
  Harness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(FragileWorkflow()).ok());

  // Healthy request works.
  EXPECT_TRUE(InvokeOnce(h, Json::MakeObject()).ok());

  // Poisoned request: the callee's container dies, the caller receives an
  // error response -- and only the callee's container was lost.
  Json poison = Json::MakeObject();
  poison["poison"] = true;
  const Result<Json> response = InvokeOnce(h, poison);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(h.platform.StatsFor("fragile-leaf")->crashes, 1);
  EXPECT_EQ(h.platform.StatsFor("fragile-root")->crashes, 0);

  // The workflow keeps serving healthy traffic afterwards.
  EXPECT_TRUE(InvokeOnce(h, Json::MakeObject()).ok());
}

TEST(FaultIsolationTest, MergedProcessCrashTakesDownWholeWorkflow) {
  Harness h;
  const WorkflowApp app = FragileWorkflow();
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(h.controller.DeploySolutionDirect(app, FullMergeSolution(*graph)).ok());

  // Warm the merged container (no idle gap afterwards: a stale route-cache
  // penalty would otherwise delay only the first request of the pair and
  // separate them into different containers).
  bool warm = false;
  h.platform.Invoke({.caller = kClientCaller,
                     .callee = "fragile-root",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [&](Result<Json> r) { warm = r.ok(); }});
  h.sim.Run();
  ASSERT_TRUE(warm);
  Result<Json> bystander = InternalError("pending");
  bool bystander_done = false;
  {
    Json slow = Json::MakeObject();
    h.platform.Invoke({.caller = kClientCaller,
                       .callee = "fragile-root",
                       .parent = {},
                       .payload = slow,
                       .async = false,
                       .done = [&](Result<Json> r) {
      bystander = std::move(r);
      bystander_done = true;
    }});
  }
  // Immediately poison the same merged process.
  Json poison = Json::MakeObject();
  poison["poison"] = true;
  Result<Json> poisoned = InternalError("pending");
  h.platform.Invoke({.caller = kClientCaller,
                     .callee = "fragile-root",
                     .parent = {},
                     .payload = poison,
                     .async = false,
                     .done = [&](Result<Json> r) { poisoned = std::move(r); }});
  h.sim.RunUntil(h.sim.now() + Seconds(5));

  // The crash is attributed to the merged workflow entry, and it killed the
  // innocent in-flight request too: a function crash became a workflow crash.
  EXPECT_FALSE(poisoned.ok());
  EXPECT_GE(h.platform.StatsFor("fragile-root")->crashes, 1);
  ASSERT_TRUE(bystander_done);
  EXPECT_FALSE(bystander.ok());
}

}  // namespace
}  // namespace quilt
