#include <gtest/gtest.h>

#include "src/apps/deathstarbench.h"
#include "src/core/quilt_controller.h"
#include "src/quiltc/compiler.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

struct Harness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller;
  explicit Harness(ControllerOptions options = {}) : controller(&sim, &platform, options) {}
};

TEST(ControllerExtraTest, MergedSpecCarriesImageAndBudgets) {
  Harness h;
  const WorkflowApp app = ReadHomeTimeline();
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  QuiltCompiler compiler;
  Result<MergedArtifact> artifact = compiler.MergeGroup(
      *graph, FullMergeSolution(*graph).groups[0], app.Sources());
  ASSERT_TRUE(artifact.ok());
  Result<DeploymentSpec> spec =
      h.controller.MergedSpec(app, *graph, FullMergeSolution(*graph).groups[0], *artifact);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->handle, "read-home-timeline");
  EXPECT_EQ(spec->max_scale, 20);  // Sum of the two members' max-scale.
  EXPECT_EQ(spec->container.image_size_bytes, artifact->image.size_bytes);
  EXPECT_GT(spec->container.lazy_libs, 0);  // DelayHTTP'd libcurl closure.
  ASSERT_NE(spec->behavior.merged, nullptr);
  EXPECT_EQ(spec->behavior.merged->functions.size(), 2u);
  EXPECT_EQ(spec->behavior.merged->edge_budgets.size(), 1u);
  EXPECT_GT(spec->max_concurrent_requests, 0);  // Memory-planned cap.
}

TEST(ControllerExtraTest, ProfilingMissesDataDependentPaths) {
  // §3 / Figure 3's dashed arrows: code paths that never executed in the
  // profile window are absent from the reconstructed call graph.
  ControllerOptions options;
  options.container_memory_limit_mb = 256.0;
  Harness h(options);
  const WorkflowApp app = FanOutApp(/*profiled_alpha=*/8);
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());

  h.controller.StartProfiling();
  // Drive the workflow with num=0: the fan-out loop body never runs.
  Json payload = Json::MakeObject();
  payload["num"] = 0;
  for (int i = 0; i < 20; ++i) {
    h.platform.Invoke({.caller = kClientCaller,
                       .callee = "fan-out-root",
                       .parent = {},
                       .payload = payload,
                       .async = false,
                       .done = [](Result<Json>) {}});
  }
  h.sim.RunUntil(h.sim.now() + Seconds(5));  // Monitor keeps ticking: bounded run.
  h.controller.StopProfiling();

  Result<CallGraph> graph = h.controller.BuildCallGraph("fan-out-root");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 1);  // fan-callee never observed.
  EXPECT_EQ(graph->num_edges(), 0);
}

TEST(ControllerExtraTest, ProfiledAlphaTracksObservedFanOut) {
  ControllerOptions options;
  options.container_memory_limit_mb = 256.0;
  Harness h(options);
  const WorkflowApp app = FanOutApp(/*profiled_alpha=*/8);
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());

  h.controller.StartProfiling();
  // Uniform num in [1, 5]: mean 3, so alpha = ceil(mean) = 3.
  for (int num = 1; num <= 5; ++num) {
    Json payload = Json::MakeObject();
    payload["num"] = num;
    for (int i = 0; i < 10; ++i) {
      h.platform.Invoke({.caller = kClientCaller,
                         .callee = "fan-out-root",
                         .parent = {},
                         .payload = payload,
                         .async = false,
                         .done = [](Result<Json>) {}});
    }
    h.sim.RunUntil(h.sim.now() + Seconds(5));
  }
  h.controller.StopProfiling();

  Result<CallGraph> graph = h.controller.BuildCallGraph("fan-out-root");
  ASSERT_TRUE(graph.ok());
  const EdgeId edge =
      graph->FindEdge(graph->FindNode("fan-out-root"), graph->FindNode("fan-callee"));
  ASSERT_NE(edge, -1);
  EXPECT_EQ(graph->edge(edge).alpha, 3);
  EXPECT_EQ(graph->edge(edge).type, CallType::kAsync);
}

TEST(ControllerExtraTest, ContainerMergeRequiresRegisteredRoot) {
  Harness h;
  const WorkflowApp app = ReadUserReview();
  // DeployContainerMerge goes through UpdateFunction: the root must exist.
  EXPECT_FALSE(h.controller.DeployContainerMerge(app).ok());
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  EXPECT_TRUE(h.controller.DeployContainerMerge(app).ok());
}

TEST(ControllerExtraTest, MultipleWorkflowsCoexist) {
  Harness h;
  ASSERT_TRUE(h.controller.RegisterWorkflow(ReadHomeTimeline()).ok());
  ASSERT_TRUE(h.controller.RegisterWorkflow(ReadUserReview()).ok());

  h.controller.StartProfiling();
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.warmup = Seconds(2);
  options.duration = Seconds(10);
  generator.Run(&h.sim, &h.platform, "read-home-timeline", options);
  generator.Run(&h.sim, &h.platform, "read-user-review", options);
  h.controller.StopProfiling();

  // Each workflow's call graph only contains its own functions.
  Result<CallGraph> g1 = h.controller.BuildCallGraph("read-home-timeline");
  Result<CallGraph> g2 = h.controller.BuildCallGraph("read-user-review");
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1->num_nodes(), 2);
  EXPECT_EQ(g2->num_nodes(), 2);
  EXPECT_TRUE(h.controller.OptimizeWorkflow("read-home-timeline").ok());
  EXPECT_TRUE(h.controller.OptimizeWorkflow("read-user-review").ok());
}

TEST(ControllerExtraTest, OptOutFunctionLimitsMerging) {
  Harness h;
  WorkflowApp app = ComposePost(false);
  for (AppFunctionSpec& fn : app.functions) {
    if (fn.handle == "text-service") {
      fn.mergeable = false;
    }
  }
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  // A full merge must be rejected by the compiler (opt-out, §1.1).
  QuiltCompiler compiler;
  EXPECT_FALSE(
      compiler.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources()).ok());
}

TEST(ControllerExtraTest, DeploySolutionDirectEmitsCompileRecords) {
  Harness h;
  const WorkflowApp app = ReadHomeTimeline();
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  const MergeSolution solution = FullMergeSolution(*graph);
  ASSERT_TRUE(h.controller.DeploySolutionDirect(app, solution).ok());

  const std::vector<CompileRecord>& records = h.controller.metrics_store()->compiles();
  ASSERT_EQ(records.size(), solution.groups.size());
  for (const CompileRecord& record : records) {
    EXPECT_EQ(record.trigger, "direct");
    EXPECT_EQ(record.workflow, "read-home-timeline");
    EXPECT_NE(record.fingerprint, 0u);
    EXPECT_GT(record.total_s, 0.0);
  }
  const CompileRecord& merge_record = records[0];
  EXPECT_EQ(merge_record.kind, "merge");
  EXPECT_EQ(merge_record.members, 2);

  // Redeploying the same solution answers from the cache but still emits
  // identical records (determinism contract: records carry no cache state).
  ASSERT_TRUE(h.controller.RollbackDeployment(app.root_handle).ok());
  ASSERT_TRUE(h.controller.DeploySolutionDirect(app, solution).ok());
  const std::vector<CompileRecord>& after = h.controller.metrics_store()->compiles();
  ASSERT_EQ(after.size(), 2 * solution.groups.size());
  for (size_t i = 0; i < solution.groups.size(); ++i) {
    CompileRecord first = after[i];
    CompileRecord second = after[i + solution.groups.size()];
    second.virtual_time = first.virtual_time;  // Context, not content.
    EXPECT_EQ(CompileRecordLine(first), CompileRecordLine(second));
  }
  EXPECT_GT(h.controller.compile_service()->stats().artifact_hits, 0);
}

TEST(ControllerExtraTest, CompileThreadsAndCachesDoNotChangeWhatIsDeployed) {
  // Same direct deployment under three controller configurations: serial
  // uncached, serial cached, and 8-thread cached. The platform-visible
  // deployment and the compile records must be identical.
  const WorkflowApp app = ReadHomeTimeline();
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  const MergeSolution solution = FullMergeSolution(*graph);

  std::vector<ControllerOptions> configs(3);
  configs[0].compile_ir_cache = false;
  configs[0].compile_artifact_cache = false;
  configs[2].compile_threads = 8;

  std::string reference;
  for (size_t i = 0; i < configs.size(); ++i) {
    Harness h(configs[i]);
    ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
    ASSERT_TRUE(h.controller.DeploySolutionDirect(app, solution).ok());
    std::string lines;
    for (const CompileRecord& record : h.controller.metrics_store()->compiles()) {
      lines += CompileRecordLine(record);
      lines += "\n";
    }
    if (i == 0) {
      reference = lines;
    } else {
      EXPECT_EQ(lines, reference) << "config " << i;
    }
  }
}

}  // namespace
}  // namespace quilt
