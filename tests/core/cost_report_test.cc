// Billing at the controller/autopilot level: canonical CostRecord lines are
// byte-identical across runs and decision-thread counts, CollectCostReport
// snapshots the meter exactly, and the autopilot's cost loop (canary $ gate,
// cost-regression detector) is wired to the same records.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/apps/deathstarbench.h"
#include "src/autopilot/autopilot.h"
#include "src/autopilot/detectors.h"
#include "src/common/cost_record.h"
#include "src/core/quilt_controller.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

std::string SerializedCostLines(const std::vector<CostRecord>& records) {
  std::string out;
  for (const CostRecord& r : records) {
    out += CostRecordLine(r);
    out += '\n';
  }
  return out;
}

// Full pipeline at a given decision-thread count and λ: register, profile,
// optimize, serve load, then collect the bill.
std::string RunPipeline(int threads, double lambda) {
  ControllerOptions options;
  options.decision_threads = threads;
  options.cost.cost_weight = lambda;
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  QuiltController controller(&sim, &platform, options);
  const WorkflowApp app = PageService(true);
  EXPECT_TRUE(controller.RegisterWorkflow(app).ok());

  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options load;
  load.warmup = Seconds(2);
  load.duration = Seconds(10);

  controller.StartProfiling();
  generator.Run(&sim, &platform, app.root_handle, load);
  controller.StopProfiling();
  Result<MergeSolution> solution = controller.OptimizeWorkflow(app.root_handle);
  EXPECT_TRUE(solution.ok());
  generator.Run(&sim, &platform, app.root_handle, load);

  return SerializedCostLines(controller.CollectCostReport().records);
}

TEST(CostReportTest, CostLinesByteIdenticalAcrossRunsAndThreads) {
  const std::string one = RunPipeline(1, 0.5);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, RunPipeline(1, 0.5));  // Same run, same bytes.
  EXPECT_EQ(one, RunPipeline(2, 0.5));  // Decision threads don't leak in.
  EXPECT_EQ(one, RunPipeline(8, 0.5));
}

TEST(CostReportTest, ReportMatchesMeterExactly) {
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  QuiltController controller(&sim, &platform);
  const WorkflowApp app = PageService(true);
  ASSERT_TRUE(controller.RegisterWorkflow(app).ok());

  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options load;
  load.warmup = Seconds(1);
  load.duration = Seconds(5);
  generator.Run(&sim, &platform, app.root_handle, load);

  const QuiltController::CostReport report = controller.CollectCostReport();
  ASSERT_FALSE(report.records.empty());
  EXPECT_EQ(report.invocation_nanos, platform.cost_meter().TotalNanos());
  EXPECT_EQ(report.invocation_attempts, platform.cost_meter().TotalAttempts());
  int64_t sum = 0;
  for (const CostRecord& r : report.records) {
    EXPECT_EQ(r.total_nanos, r.request_fee_nanos + r.compute_nanos) << r.handle;
    sum += r.total_nanos;
  }
  EXPECT_EQ(sum, report.invocation_nanos);  // Lines sum to the bill, exactly.
  // The report lands in the metrics store as canonical records.
  EXPECT_EQ(controller.metrics_store()->cost_records().size(), report.records.size());
}

TEST(CostReportTest, WorkflowFunctionHandlesCoverTheApp) {
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  QuiltController controller(&sim, &platform);
  const WorkflowApp app = PageService(true);
  ASSERT_TRUE(controller.RegisterWorkflow(app).ok());

  std::vector<std::string> handles = controller.WorkflowFunctionHandles(app.root_handle);
  std::vector<std::string> expected;
  for (const AppFunctionSpec& fn : app.functions) {
    expected.push_back(fn.handle);
  }
  std::sort(handles.begin(), handles.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(handles, expected);
  EXPECT_TRUE(controller.WorkflowFunctionHandles("ghost").empty());
}

TEST(CostRegressionDetectorTest, HoldsWithoutEvidence) {
  const CostRegressionDetector detector(0.5);
  EXPECT_STREQ(detector.name(), "cost-regression");
  EXPECT_EQ(detector.action(), AdaptationAction::kReoptimize);

  DetectorSignals signals;  // Quiet window: no summary at all.
  EXPECT_FALSE(detector.Evaluate(signals).fired);

  WorkflowLatencySummary window;
  signals.window = &window;
  signals.cost_per_request_nanos = 900;
  signals.baseline_cost_per_request_nanos = 0;  // Baseline not armed yet.
  EXPECT_FALSE(detector.Evaluate(signals).fired);

  signals.baseline_cost_per_request_nanos = 600;
  signals.cost_per_request_nanos = 0;  // Billing idle this window.
  EXPECT_FALSE(detector.Evaluate(signals).fired);
}

TEST(CostRegressionDetectorTest, FiresOnDollarRegression) {
  const CostRegressionDetector detector(0.5);
  WorkflowLatencySummary window;
  DetectorSignals signals;
  signals.window = &window;
  signals.baseline_cost_per_request_nanos = 600;

  signals.cost_per_request_nanos = 890;  // +48%: inside the 50% band.
  EXPECT_FALSE(detector.Evaluate(signals).fired);

  signals.cost_per_request_nanos = 960;  // +60%: regression.
  const DetectorVerdict verdict = detector.Evaluate(signals);
  EXPECT_TRUE(verdict.fired);
  EXPECT_NEAR(verdict.metric, 0.6, 1e-9);
  EXPECT_DOUBLE_EQ(verdict.threshold, 0.5);
  EXPECT_FALSE(verdict.reason.empty());
}

// The canary dollar gate: an impossible tolerance (< 0 means the canary must
// be strictly cheaper than 0x control) blocks every promotion, so the same
// lifecycle that promotes under defaults aborts its canary instead.
TEST(CanaryCostGateTest, ImpossibleToleranceBlocksPromotion) {
  ControllerOptions controller_options;
  controller_options.container_memory_limit_mb = 256.0;
  AutopilotOptions pilot_options;
  pilot_options.tick_interval = Seconds(5);
  pilot_options.min_window_traces = 10;
  pilot_options.canary_min_traces = 8;
  pilot_options.canary_fraction = 0.3;
  pilot_options.canary_cost_tolerance = -1.0;

  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  QuiltController controller(&sim, &platform, controller_options);
  Autopilot pilot(&sim, &controller, pilot_options);
  ASSERT_TRUE(controller.RegisterWorkflow(FanOutApp(4)).ok());
  ASSERT_TRUE(pilot.Enroll("fan-out-root").ok());
  pilot.Start();

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options load;
  load.rps = 8.0;
  load.warmup = 0;
  load.duration = Seconds(25);
  load.drain_grace = Seconds(5);
  Json payload = Json::MakeObject();
  payload["num"] = 2;
  load.payload = std::move(payload);
  generator.Run(&sim, &platform, "fan-out-root", load);
  pilot.Stop();

  bool promoted = false;
  bool aborted = false;
  std::string abort_reason;
  for (const AdaptationRecord& r : controller.metrics_store()->adaptations()) {
    promoted = promoted || r.action == "promote";
    if (r.action == "abort-canary") {
      aborted = true;
      abort_reason = r.reason;
    }
  }
  EXPECT_FALSE(promoted);
  ASSERT_TRUE(aborted);
  // The verdict carries the per-arm $/request it compared.
  EXPECT_NE(abort_reason.find("$/request"), std::string::npos) << abort_reason;
  EXPECT_FALSE(controller.HasMergedDeployment("fan-out-root"));
}

}  // namespace
}  // namespace quilt
