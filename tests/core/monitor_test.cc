// Merge monitoring (§1.1, §8): Quilt reconsiders merges when workloads
// shift, rolls back misbehaving merged functions, and reverts on permission
// revocation or function updates.
#include <gtest/gtest.h>

#include "src/apps/deathstarbench.h"
#include "src/core/quilt_controller.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

struct Harness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller;
  explicit Harness(ControllerOptions options = {}) : controller(&sim, &platform, options) {}

  // Drives the fan-out workflow with a fixed num while profiling.
  void ProfileFanOut(int num, int requests = 40) {
    controller.StartProfiling();
    Json payload = Json::MakeObject();
    payload["num"] = num;
    for (int i = 0; i < requests; ++i) {
      platform.Invoke({.caller = kClientCaller,
                       .callee = "fan-out-root",
                       .parent = {},
                       .payload = payload,
                       .async = false,
                       .done = [](Result<Json>) {}});
    }
    sim.RunUntil(sim.now() + Seconds(5));
    controller.StopProfiling();
  }
};

ControllerOptions FanOutOptions() {
  ControllerOptions options;
  options.container_memory_limit_mb = 256.0;
  return options;
}

TEST(MonitorTest, ReconsiderRequiresDeployedMerge) {
  Harness h(FanOutOptions());
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(8)).ok());
  EXPECT_EQ(h.controller.ReconsiderWorkflow("fan-out-root").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MonitorTest, UnchangedWorkloadKeepsMerge) {
  Harness h(FanOutOptions());
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(8)).ok());
  h.ProfileFanOut(2);
  ASSERT_TRUE(h.controller.OptimizeWorkflow("fan-out-root").ok());

  h.ProfileFanOut(2);  // Same workload shape.
  Result<QuiltController::ReconsiderReport> report =
      h.controller.ReconsiderWorkflow("fan-out-root");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->redeployed);
  EXPECT_FALSE(report->rolled_back);
}

TEST(MonitorTest, WorkloadDriftTriggersRedeploy) {
  Harness h(FanOutOptions());
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(8)).ok());
  h.ProfileFanOut(2);
  ASSERT_TRUE(h.controller.OptimizeWorkflow("fan-out-root").ok());

  // The fan-out grows: the profiled alpha (and thus the conditional budgets)
  // must be rebuilt.
  h.ProfileFanOut(6);
  Result<QuiltController::ReconsiderReport> report =
      h.controller.ReconsiderWorkflow("fan-out-root");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->redeployed) << report->reason;
  EXPECT_FALSE(report->rolled_back);
}

TEST(MonitorTest, OomKillsTriggerRollback) {
  // Deploy with conditional invocations disabled so fan-outs beyond the
  // container's capacity OOM-kill the merged function.
  ControllerOptions options = FanOutOptions();
  options.quiltc.conditional_invocations = false;
  Harness h(options);
  ASSERT_TRUE(h.controller.RegisterWorkflow(FanOutApp(8)).ok());
  h.ProfileFanOut(2);
  ASSERT_TRUE(h.controller.OptimizeWorkflow("fan-out-root").ok());

  // A burst of oversized requests crashes merged containers.
  Json payload = Json::MakeObject();
  payload["num"] = 12;
  int failed = 0;
  for (int i = 0; i < 5; ++i) {
    h.platform.Invoke({.caller = kClientCaller,
                       .callee = "fan-out-root",
                       .parent = {},
                       .payload = payload,
                       .async = false,
                       .done = [&](Result<Json> r) { failed += r.ok() ? 0 : 1; }});
    h.sim.RunUntil(h.sim.now() + Seconds(2));
  }
  ASSERT_GT(failed, 0);

  Result<QuiltController::ReconsiderReport> report =
      h.controller.ReconsiderWorkflow("fan-out-root");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->rolled_back) << report->reason;

  // After rollback the oversized request succeeds on the unmerged baseline.
  bool ok = false;
  h.platform.Invoke({.caller = kClientCaller,
                     .callee = "fan-out-root",
                     .parent = {},
                     .payload = payload,
                     .async = false,
                     .done = [&](Result<Json> r) { ok = r.ok(); }});
  h.sim.RunUntil(h.sim.now() + Seconds(5));
  EXPECT_TRUE(ok);
}

TEST(MonitorTest, RevokingPermissionRevertsWorkflow) {
  Harness h;
  const WorkflowApp app = ReadHomeTimeline();
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  h.controller.StartProfiling();
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options load;
  load.warmup = Seconds(2);
  load.duration = Seconds(10);
  generator.Run(&h.sim, &h.platform, app.root_handle, load);
  h.controller.StopProfiling();
  ASSERT_TRUE(h.controller.OptimizeWorkflow(app.root_handle).ok());
  const LoadResult merged = generator.Run(&h.sim, &h.platform, app.root_handle, load);

  ASSERT_TRUE(h.controller.RevokeMergePermission("post-storage-read").ok());
  const LoadResult reverted = generator.Run(&h.sim, &h.platform, app.root_handle, load);
  // Remote invocations are back.
  EXPECT_GT(reverted.latency.Median(), merged.latency.Median());
  // Reconsider is now a precondition failure (nothing merged is live).
  EXPECT_FALSE(h.controller.ReconsiderWorkflow(app.root_handle).ok());
  // And future merges of that workflow are rejected by the pipeline.
  EXPECT_FALSE(h.controller.OptimizeWorkflow(app.root_handle).ok());
  EXPECT_EQ(h.controller.RevokeMergePermission("ghost").code(), StatusCode::kNotFound);
}

TEST(MonitorTest, FunctionUpdateRevertsMerge) {
  Harness h;
  const WorkflowApp app = ReadUserReview();
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  h.controller.StartProfiling();
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options load;
  load.warmup = Seconds(2);
  load.duration = Seconds(10);
  generator.Run(&h.sim, &h.platform, app.root_handle, load);
  h.controller.StopProfiling();
  ASSERT_TRUE(h.controller.OptimizeWorkflow(app.root_handle).ok());
  const LoadResult merged = generator.Run(&h.sim, &h.platform, app.root_handle, load);

  SourceFunction updated;
  updated.handle = "user-review-storage";
  updated.lang = Lang::kRust;
  updated.user_code_bytes = 90 * 1024;
  ASSERT_TRUE(h.controller.UpdateFunctionSource("user-review-storage", updated).ok());
  const LoadResult reverted = generator.Run(&h.sim, &h.platform, app.root_handle, load);
  EXPECT_GT(reverted.latency.Median(), merged.latency.Median());
  EXPECT_EQ(h.controller.UpdateFunctionSource("ghost", updated).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace quilt
