// Controller-level decision policy (§4): QuiltController::Decide delegates
// to the DecisionEngine, which picks the solver by graph size and logs a
// DecisionRecord into the MetricsStore.
#include <gtest/gtest.h>

#include "src/core/quilt_controller.h"
#include "src/graph/random_dag.h"
#include "src/partition/grasp_solver.h"

namespace quilt {
namespace {

struct Harness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller;

  explicit Harness(ControllerOptions options = {}) : controller(&sim, &platform, options) {}
};

// A graph above the GRASP threshold whose groups need the generous limits
// below to stay feasible.
CallGraph LargeGraph() {
  Rng rng(61);
  RandomDagOptions options;
  options.num_nodes = 60;
  return GenerateRandomRdag(options, rng);
}

ControllerOptions LargeGraphOptions() {
  ControllerOptions options;
  options.container_cpu_limit = 100.0;
  options.container_memory_limit_mb = 2000.0;
  return options;
}

TEST(DecisionPolicyTest, LargeGraphDecisionUsesGraspAndLogsRecord) {
  Harness h(LargeGraphOptions());
  const CallGraph graph = LargeGraph();
  ASSERT_GT(graph.num_nodes(), h.controller.options().grasp_min_nodes);

  Result<MergeSolution> solution = h.controller.Decide(graph);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  MergeProblem problem{&graph, 100.0, 2000.0};
  EXPECT_TRUE(CheckSolution(problem, *solution).ok());

  ASSERT_EQ(h.controller.metrics_store()->decisions().size(), 1u);
  const DecisionRecord& record = h.controller.metrics_store()->decisions().back();
  EXPECT_EQ(record.solver, "grasp");
  EXPECT_EQ(record.trigger, "decide");
  EXPECT_EQ(record.seed, h.controller.options().decision_seed);
  EXPECT_EQ(record.graph_nodes, graph.num_nodes());
  EXPECT_TRUE(record.feasible);
  EXPECT_DOUBLE_EQ(record.final_cost, solution->cross_cost);
  EXPECT_EQ(record.grasp_starts, h.controller.options().grasp_starts);
  EXPECT_GT(record.ilp_solves, 0);
  EXPECT_GE(record.wall_ms, 0.0);
}

TEST(DecisionPolicyTest, DecisionSeedMakesControllerGraspReproducible) {
  const CallGraph graph = LargeGraph();
  ControllerOptions options = LargeGraphOptions();
  options.decision_seed = 12345;

  std::string signatures[2];
  for (int i = 0; i < 2; ++i) {
    Harness h(options);
    Result<MergeSolution> solution = h.controller.Decide(graph);
    ASSERT_TRUE(solution.ok()) << solution.status().ToString();
    signatures[i] = CanonicalSolutionSignature(*solution);
    EXPECT_EQ(h.controller.metrics_store()->decisions().back().seed, 12345u);
  }
  EXPECT_EQ(signatures[0], signatures[1]);
}

TEST(DecisionPolicyTest, ExplicitSolverOverrideIsHonored) {
  ControllerOptions options = LargeGraphOptions();
  options.decision_solver = SolverChoice::kHeuristic;
  Harness h(options);
  Result<MergeSolution> solution = h.controller.Decide(LargeGraph());
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(h.controller.metrics_store()->decisions().back().solver, "dih-sweep");
}

TEST(DecisionPolicyTest, SmallGraphStillUsesExactSolver) {
  Harness h;
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 10);
  const NodeId b = g.AddNode("B", 0.1, 10);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  Result<MergeSolution> solution = h.controller.Decide(g);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->cross_cost, 0.0);
  const DecisionRecord& record = h.controller.metrics_store()->decisions().back();
  EXPECT_EQ(record.solver, "optimal");
  EXPECT_EQ(record.num_groups, 1);
}

TEST(DecisionPolicyTest, RepeatDecisionsHitTheSharedCache) {
  Harness h(LargeGraphOptions());
  const CallGraph graph = LargeGraph();
  ASSERT_TRUE(h.controller.Decide(graph).ok());
  ASSERT_TRUE(h.controller.Decide(graph).ok());
  const auto& decisions = h.controller.metrics_store()->decisions();
  ASSERT_EQ(decisions.size(), 2u);
  // The re-decision answers its Phase-2 ILPs from the cache.
  EXPECT_EQ(decisions[1].ilp_cache_hits, decisions[1].ilp_solves);
  EXPECT_GT(decisions[1].ilp_cache_hits, 0);
  // And produces the identical answer.
  EXPECT_DOUBLE_EQ(decisions[0].final_cost, decisions[1].final_cost);
}

}  // namespace
}  // namespace quilt
