// Reproducibility: two identical end-to-end runs (same seeds, same virtual
// clock) must agree bit-for-bit on every reported statistic. This is the
// property that makes the bench harness results citable.
#include <gtest/gtest.h>

#include "src/apps/deathstarbench.h"
#include "src/core/quilt_controller.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

struct RunOutcome {
  int64_t baseline_median = 0;
  int64_t merged_median = 0;
  int64_t completed = 0;
  double cross_cost = 0.0;
  int groups = 0;
  int64_t spans = 0;
};

RunOutcome RunOnce() {
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  QuiltController controller(&sim, &platform);
  const WorkflowApp app = PageService(true);
  EXPECT_TRUE(controller.RegisterWorkflow(app).ok());

  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.warmup = Seconds(2);
  options.duration = Seconds(15);

  RunOutcome outcome;
  const LoadResult baseline = generator.Run(&sim, &platform, app.root_handle, options);
  outcome.baseline_median = baseline.latency.Median();

  controller.StartProfiling();
  generator.Run(&sim, &platform, app.root_handle, options);
  controller.StopProfiling();
  outcome.spans = controller.span_store()->size();

  Result<MergeSolution> solution = controller.OptimizeWorkflow(app.root_handle);
  EXPECT_TRUE(solution.ok());
  if (solution.ok()) {
    outcome.cross_cost = solution->cross_cost;
    outcome.groups = solution->num_groups();
  }
  const LoadResult merged = generator.Run(&sim, &platform, app.root_handle, options);
  outcome.merged_median = merged.latency.Median();
  outcome.completed = merged.completed;
  return outcome;
}

TEST(DeterminismTest, EndToEndRunsAreBitIdentical) {
  const RunOutcome first = RunOnce();
  const RunOutcome second = RunOnce();
  EXPECT_EQ(first.baseline_median, second.baseline_median);
  EXPECT_EQ(first.merged_median, second.merged_median);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.cross_cost, second.cross_cost);
  EXPECT_EQ(first.groups, second.groups);
  EXPECT_EQ(first.spans, second.spans);
}

TEST(DeterminismTest, OpenLoopPoissonIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    Simulation sim;
    Platform platform(&sim, PlatformConfig{});
    QuiltController controller(&sim, &platform);
    EXPECT_TRUE(controller.RegisterWorkflow(NoOpFunction()).ok());
    OpenLoopGenerator generator;
    OpenLoopGenerator::Options options;
    options.rps = 300;
    options.poisson = true;
    options.seed = seed;
    options.warmup = Seconds(1);
    options.duration = Seconds(10);
    return generator.Run(&sim, &platform, "no-op", options);
  };
  const LoadResult a = run(7);
  const LoadResult b = run(7);
  const LoadResult c = run(8);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.latency.Median(), b.latency.Median());
  // A different seed yields a different arrival pattern.
  EXPECT_NE(a.completed, c.completed);
}

}  // namespace
}  // namespace quilt
