// Per-function billing inside merged processes (§8): the paper notes that
// merged functions obscure the billing boundary and suggests instrumenting
// the merged code; this extension implements it. CPU time is attributed to
// the function whose compute burst ran, whether it executes in its own
// container or fused into a merged process.
#include <gtest/gtest.h>

#include "src/apps/deathstarbench.h"
#include "src/core/quilt_controller.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

struct Harness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  QuiltController controller{&sim, &platform};
};

LoadResult RunLoad(Harness& h, const std::string& target) {
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.warmup = Seconds(2);
  options.duration = Seconds(15);
  return generator.Run(&h.sim, &h.platform, target, options);
}

TEST(BillingTest, BaselineAttributesCpuPerFunction) {
  Harness h;
  const WorkflowApp app = ReadHomeTimeline();
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  const LoadResult load = RunLoad(h, app.root_handle);
  ASSERT_GT(load.completed, 10);
  EXPECT_GT(h.platform.BilledCpuSeconds("read-home-timeline"), 0.0);
  EXPECT_GT(h.platform.BilledCpuSeconds("post-storage-read"), 0.0);
  EXPECT_EQ(h.platform.BilledCpuSeconds("nonexistent"), 0.0);
  // The leaf burns more CPU per request (0.45ms vs 0.5ms + http)... both in
  // the same ballpark; per-request shares should scale with the workload.
  const double per_request =
      h.platform.BilledCpuSeconds("post-storage-read") / static_cast<double>(load.completed);
  EXPECT_NEAR(per_request, (0.45 + 0.15) / 1000.0, 0.3e-3);
}

TEST(BillingTest, MergedProcessStillBillsEveryMemberFunction) {
  Harness h;
  const WorkflowApp app = ComposePost(false);
  ASSERT_TRUE(h.controller.RegisterWorkflow(app).ok());
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(h.controller.DeploySolutionDirect(app, FullMergeSolution(*graph)).ok());

  const LoadResult load = RunLoad(h, app.root_handle);
  ASSERT_GT(load.completed, 10);

  // Every member function accrues billed CPU even though only one
  // deployment ("compose-post") exists on the platform.
  for (const AppFunctionSpec& fn : app.functions) {
    EXPECT_GT(h.platform.BilledCpuSeconds(fn.handle), 0.0) << fn.handle;
  }
  // Attribution is proportional to each function's compute: text-service
  // burns 0.7ms vs media-service 0.4ms per request.
  const double text = h.platform.BilledCpuSeconds("text-service");
  const double media = h.platform.BilledCpuSeconds("media-service");
  EXPECT_GT(text, media);
  EXPECT_NEAR(text / media, 0.7 / 0.4, 0.35);
}

TEST(BillingTest, MergedBillingMatchesBaselineShares) {
  // The merged process bills *less* total CPU (no per-hop HTTP work) but the
  // members' relative shares of pure compute stay comparable.
  const WorkflowApp app = ReadUserReview();

  Harness baseline;
  ASSERT_TRUE(baseline.controller.RegisterWorkflow(app).ok());
  const LoadResult base_load = RunLoad(baseline, app.root_handle);

  Harness merged;
  ASSERT_TRUE(merged.controller.RegisterWorkflow(app).ok());
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(merged.controller.DeploySolutionDirect(app, FullMergeSolution(*graph)).ok());
  const LoadResult merged_load = RunLoad(merged, app.root_handle);

  const double base_leaf = baseline.platform.BilledCpuSeconds("user-review-storage") /
                           static_cast<double>(base_load.completed);
  const double merged_leaf = merged.platform.BilledCpuSeconds("user-review-storage") /
                             static_cast<double>(merged_load.completed);
  // Merged leaf lacks the per-request HTTP handler work (0.15 ms).
  EXPECT_NEAR(base_leaf - merged_leaf, 0.15e-3, 0.05e-3);
}

}  // namespace
}  // namespace quilt
