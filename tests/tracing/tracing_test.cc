#include <gtest/gtest.h>

#include "src/tracing/call_graph_builder.h"
#include "src/tracing/resource_monitor.h"
#include "src/tracing/tracer.h"

namespace quilt {
namespace {

// Legacy (pre-trace-identity) span: trace_id stays 0.
Span MakeSpan(const std::string& caller, const std::string& callee, bool async = false,
              SimTime t = 0) {
  Span span;
  span.caller = caller;
  span.callee = callee;
  span.async = async;
  span.timestamp = t;
  return span;
}

// Span carrying full trace identity, as the platform records them now.
Span TracedSpan(int64_t trace_id, int64_t span_id, int64_t parent, const std::string& caller,
                const std::string& callee, bool async = false) {
  Span span = MakeSpan(caller, callee, async);
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_span_id = parent;
  return span;
}

TEST(TracerTest, BatchesAndFlushesOnTimer) {
  Simulation sim;
  SpanStore store;
  Tracer tracer(&sim, &store, Seconds(1));
  tracer.Record(MakeSpan("client", "a"));
  tracer.Record(MakeSpan("a", "b"));
  EXPECT_EQ(store.size(), 0);  // Still buffered.
  sim.Run();                   // The flush timer fires.
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(tracer.recorded(), 2);
}

TEST(TracerTest, ManualFlush) {
  Simulation sim;
  SpanStore store;
  Tracer tracer(&sim, &store);
  tracer.Record(MakeSpan("client", "a"));
  tracer.Flush();
  EXPECT_EQ(store.size(), 1);
}

TEST(TracerTest, DestructorFlushesFinalBatch) {
  Simulation sim;
  SpanStore store;
  {
    Tracer tracer(&sim, &store, Seconds(1));
    tracer.Record(MakeSpan("client", "a"));
    tracer.Record(MakeSpan("a", "b"));
    EXPECT_EQ(store.size(), 0);  // Run "ended" inside a batch interval.
  }
  // Teardown must not strand the buffered spans.
  EXPECT_EQ(store.size(), 2);
}

TEST(SpanStoreTest, QueryByWindow) {
  SpanStore store;
  store.Add(MakeSpan("client", "a", false, Seconds(1)));
  store.Add(MakeSpan("client", "a", false, Seconds(5)));
  store.Add(MakeSpan("client", "a", false, Seconds(9)));
  EXPECT_EQ(store.Query(Seconds(2), Seconds(8)).size(), 1u);
  EXPECT_EQ(store.Query(0, Seconds(100)).size(), 3u);
  store.Clear();
  EXPECT_EQ(store.size(), 0);
}

TEST(SpanStoreTest, KeepsSortedOrderUnderOutOfOrderAdds) {
  SpanStore store;
  store.Add(MakeSpan("client", "a", false, Seconds(5)));
  store.Add(MakeSpan("client", "b", false, Seconds(1)));  // Before the back: inserted.
  store.Add(MakeSpan("client", "c", false, Seconds(9)));
  store.Add(MakeSpan("client", "d", false, Seconds(5)));  // Equal: keeps arrival order.
  ASSERT_EQ(store.size(), 4);
  EXPECT_EQ(store.spans()[0].callee, "b");
  EXPECT_EQ(store.spans()[1].callee, "a");
  EXPECT_EQ(store.spans()[2].callee, "d");
  EXPECT_EQ(store.spans()[3].callee, "c");

  // The binary-searched range lookup sees the sorted view: [from, to).
  const std::vector<Span> mid = store.Query(Seconds(5), Seconds(9));
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0].callee, "a");
  EXPECT_EQ(mid[1].callee, "d");
  EXPECT_EQ(store.Query(Seconds(9), Seconds(9)).size(), 0u);  // Empty window.
  EXPECT_EQ(store.Query(Seconds(6), Seconds(5)).size(), 0u);  // Inverted window.
}

TEST(SpanStoreTest, RetentionWindowEvictsStaleSpans) {
  SpanStore store;
  store.set_retention_window(Seconds(5));
  store.Add(MakeSpan("client", "a", false, Seconds(1)));
  store.Add(MakeSpan("client", "b", false, Seconds(4)));
  EXPECT_EQ(store.size(), 2);  // Nothing older than 5s behind the newest yet.
  store.Add(MakeSpan("client", "c", false, Seconds(9)));
  // Newest start is 9s: the 1s span has fallen beyond the horizon.
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.evicted(), 1);
  EXPECT_EQ(store.spans()[0].callee, "b");
  EXPECT_EQ(store.Query(0, Seconds(100)).size(), 2u);

  SpanStore unbounded;  // Default: keep everything.
  unbounded.Add(MakeSpan("client", "a", false, Seconds(1)));
  unbounded.Add(MakeSpan("client", "b", false, Seconds(1000)));
  EXPECT_EQ(unbounded.size(), 2);
  EXPECT_EQ(unbounded.evicted(), 0);
}

TEST(ResourceMonitorTest, SamplesPeriodically) {
  Simulation sim;
  MetricsStore store;
  int ticks = 0;
  ResourceMonitor monitor(
      &sim, &store,
      [&] {
        ++ticks;
        ResourceSample sample;
        sample.handle = "fn";
        sample.container_id = 1;
        sample.cpu_seconds_cum = ticks * 0.1;
        sample.busy_seconds_cum = ticks * 0.5;
        sample.peak_memory_mb = 30.0;
        return std::vector<ResourceSample>{sample};
      },
      Seconds(1));
  monitor.Start();
  sim.RunUntil(Seconds(5) + 1);
  monitor.Stop();
  sim.Run();
  EXPECT_GE(ticks, 5);
  EXPECT_EQ(store.samples().size(), static_cast<size_t>(ticks));
}

TEST(MetricsStoreTest, AggregatesPerHandle) {
  MetricsStore store;
  // Two containers of fn-a, one of fn-b.
  ResourceSample s1{"fn-a", 1, 0, 2.0, 4.0, 10.0, 12.0};
  ResourceSample s2{"fn-a", 2, 0, 1.0, 2.0, 9.0, 20.0};
  ResourceSample s3{"fn-b", 3, 0, 5.0, 5.0, 7.0, 8.0};
  // Older duplicate of container 1 with lower counters: superseded.
  ResourceSample s0{"fn-a", 1, 0, 1.0, 2.0, 10.0, 11.0};
  store.Add(s0);
  store.Add(s1);
  store.Add(s2);
  store.Add(s3);
  const auto usage = store.Aggregate();
  ASSERT_EQ(usage.size(), 2u);
  // fn-a: (2+1) cpu over (4+2) busy = 0.5 vCPU; peak = 20.
  EXPECT_NEAR(usage.at("fn-a").avg_cpu, 0.5, 1e-9);
  EXPECT_EQ(usage.at("fn-a").peak_memory_mb, 20.0);
  EXPECT_NEAR(usage.at("fn-b").avg_cpu, 1.0, 1e-9);
}

TEST(CallGraphBuilderTest, BuildsGraphWithAlpha) {
  std::vector<Span> spans;
  // 10 workflow invocations, each a proper trace tree.
  for (int i = 0; i < 10; ++i) {
    const int64_t trace = i + 1;
    spans.push_back(TracedSpan(trace, 1, 0, kClientCaller, "root"));
    spans.push_back(TracedSpan(trace, 2, 1, "root", "mid"));
    // mid calls leaf 3x per request.
    for (int j = 0; j < 3; ++j) {
      spans.push_back(TracedSpan(trace, 3 + j, 2, "mid", "leaf", /*async=*/true));
    }
  }
  std::map<std::string, MetricsStore::FunctionUsage> usage;
  usage["root"] = {0.2, 8.0};
  usage["mid"] = {0.3, 12.0};

  Result<CallGraph> graph = BuildCallGraphFromTraces(spans, usage, "root");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_nodes(), 3);
  EXPECT_EQ(graph->root(), graph->FindNode("root"));
  EXPECT_TRUE(graph->Validate().ok());

  const EdgeId root_mid = graph->FindEdge(graph->FindNode("root"), graph->FindNode("mid"));
  ASSERT_NE(root_mid, -1);
  EXPECT_EQ(graph->edge(root_mid).alpha, 1);
  EXPECT_EQ(graph->edge(root_mid).type, CallType::kSync);
  EXPECT_DOUBLE_EQ(graph->edge(root_mid).weight, 10.0);

  const EdgeId mid_leaf = graph->FindEdge(graph->FindNode("mid"), graph->FindNode("leaf"));
  ASSERT_NE(mid_leaf, -1);
  EXPECT_EQ(graph->edge(mid_leaf).alpha, 3);
  EXPECT_EQ(graph->edge(mid_leaf).type, CallType::kAsync);

  // Node labels: from usage where present, defaults elsewhere.
  EXPECT_DOUBLE_EQ(graph->node(graph->FindNode("root")).cpu, 0.2);
  EXPECT_DOUBLE_EQ(graph->node(graph->FindNode("leaf")).cpu, 0.1);  // Default.
}

TEST(CallGraphBuilderTest, RequiresWorkflowInvocations) {
  std::vector<Span> spans = {MakeSpan("a", "b")};
  EXPECT_FALSE(BuildCallGraphFromTraces(spans, {}, "root").ok());
}

TEST(CallGraphBuilderTest, ForeignTracesThroughSharedFunctionsDoNotBleed) {
  // Trace 1 is this workflow: root -> shared. Trace 2 belongs to another
  // workflow that reaches the *same* shared function and fans further out to
  // "extra". Without trace grouping, shared->extra aggregates into both
  // workflows' graphs (it is reachable from root via shared).
  std::vector<Span> spans;
  spans.push_back(TracedSpan(1, 1, 0, kClientCaller, "root"));
  spans.push_back(TracedSpan(1, 2, 1, "root", "shared"));
  spans.push_back(TracedSpan(2, 1, 0, kClientCaller, "other-root"));
  spans.push_back(TracedSpan(2, 2, 1, "other-root", "shared"));
  spans.push_back(TracedSpan(2, 3, 2, "shared", "extra"));

  Result<CallGraph> graph = BuildCallGraphFromTraces(spans, {}, "root");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_nodes(), 2);
  EXPECT_NE(graph->FindNode("shared"), -1);
  EXPECT_EQ(graph->FindNode("extra"), -1) << "foreign trace bled into this workflow";
  EXPECT_EQ(graph->FindNode("other-root"), -1);

  // The other workflow still sees its own full tree.
  Result<CallGraph> other = BuildCallGraphFromTraces(spans, {}, "other-root");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->num_nodes(), 3);
  EXPECT_NE(other->FindNode("extra"), -1);
}

TEST(CallGraphBuilderTest, MajorityAsyncTieBreaksToAsync) {
  // The edge type is decided by majority vote over occurrences; an exact
  // 50/50 split counts as async (an edge that is ever async must be joined).
  EXPECT_FALSE(MajorityAsync(0, 1));
  EXPECT_FALSE(MajorityAsync(1, 3));
  EXPECT_TRUE(MajorityAsync(1, 2));  // Tie -> async.
  EXPECT_TRUE(MajorityAsync(2, 3));
  EXPECT_TRUE(MajorityAsync(3, 3));

  // End to end: one async + one sync occurrence of the same edge -> kAsync.
  std::vector<Span> spans;
  spans.push_back(TracedSpan(1, 1, 0, kClientCaller, "root"));
  spans.push_back(TracedSpan(1, 2, 1, "root", "leaf", /*async=*/true));
  spans.push_back(TracedSpan(2, 1, 0, kClientCaller, "root"));
  spans.push_back(TracedSpan(2, 2, 1, "root", "leaf", /*async=*/false));
  Result<CallGraph> graph = BuildCallGraphFromTraces(spans, {}, "root");
  ASSERT_TRUE(graph.ok());
  const EdgeId edge = graph->FindEdge(graph->FindNode("root"), graph->FindNode("leaf"));
  ASSERT_NE(edge, -1);
  EXPECT_EQ(graph->edge(edge).type, CallType::kAsync);
}

TEST(CallGraphBuilderTest, AlphaIsCeilOfAverage) {
  std::vector<Span> spans;
  for (int i = 0; i < 4; ++i) {
    spans.push_back(MakeSpan(kClientCaller, "root"));
  }
  // 5 calls over 4 invocations -> alpha = ceil(1.25) = 2.
  for (int i = 0; i < 5; ++i) {
    spans.push_back(MakeSpan("root", "leaf"));
  }
  Result<CallGraph> graph = BuildCallGraphFromTraces(spans, {}, "root");
  ASSERT_TRUE(graph.ok());
  const EdgeId edge = graph->FindEdge(graph->FindNode("root"), graph->FindNode("leaf"));
  EXPECT_EQ(graph->edge(edge).alpha, 2);
}

}  // namespace
}  // namespace quilt
