#include <gtest/gtest.h>

#include "src/tracing/call_graph_builder.h"
#include "src/tracing/resource_monitor.h"
#include "src/tracing/tracer.h"

namespace quilt {
namespace {

Span MakeSpan(const std::string& caller, const std::string& callee, bool async = false,
              SimTime t = 0) {
  Span span;
  span.caller = caller;
  span.callee = callee;
  span.async = async;
  span.timestamp = t;
  return span;
}

TEST(TracerTest, BatchesAndFlushesOnTimer) {
  Simulation sim;
  SpanStore store;
  Tracer tracer(&sim, &store, Seconds(1));
  tracer.Record(MakeSpan("client", "a"));
  tracer.Record(MakeSpan("a", "b"));
  EXPECT_EQ(store.size(), 0);  // Still buffered.
  sim.Run();                   // The flush timer fires.
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(tracer.recorded(), 2);
}

TEST(TracerTest, ManualFlush) {
  Simulation sim;
  SpanStore store;
  Tracer tracer(&sim, &store);
  tracer.Record(MakeSpan("client", "a"));
  tracer.Flush();
  EXPECT_EQ(store.size(), 1);
}

TEST(SpanStoreTest, QueryByWindow) {
  SpanStore store;
  store.Add(MakeSpan("client", "a", false, Seconds(1)));
  store.Add(MakeSpan("client", "a", false, Seconds(5)));
  store.Add(MakeSpan("client", "a", false, Seconds(9)));
  EXPECT_EQ(store.Query(Seconds(2), Seconds(8)).size(), 1u);
  EXPECT_EQ(store.Query(0, Seconds(100)).size(), 3u);
  store.Clear();
  EXPECT_EQ(store.size(), 0);
}

TEST(ResourceMonitorTest, SamplesPeriodically) {
  Simulation sim;
  MetricsStore store;
  int ticks = 0;
  ResourceMonitor monitor(
      &sim, &store,
      [&] {
        ++ticks;
        ResourceSample sample;
        sample.handle = "fn";
        sample.container_id = 1;
        sample.cpu_seconds_cum = ticks * 0.1;
        sample.busy_seconds_cum = ticks * 0.5;
        sample.peak_memory_mb = 30.0;
        return std::vector<ResourceSample>{sample};
      },
      Seconds(1));
  monitor.Start();
  sim.RunUntil(Seconds(5) + 1);
  monitor.Stop();
  sim.Run();
  EXPECT_GE(ticks, 5);
  EXPECT_EQ(store.samples().size(), static_cast<size_t>(ticks));
}

TEST(MetricsStoreTest, AggregatesPerHandle) {
  MetricsStore store;
  // Two containers of fn-a, one of fn-b.
  ResourceSample s1{"fn-a", 1, 0, 2.0, 4.0, 10.0, 12.0};
  ResourceSample s2{"fn-a", 2, 0, 1.0, 2.0, 9.0, 20.0};
  ResourceSample s3{"fn-b", 3, 0, 5.0, 5.0, 7.0, 8.0};
  // Older duplicate of container 1 with lower counters: superseded.
  ResourceSample s0{"fn-a", 1, 0, 1.0, 2.0, 10.0, 11.0};
  store.Add(s0);
  store.Add(s1);
  store.Add(s2);
  store.Add(s3);
  const auto usage = store.Aggregate();
  ASSERT_EQ(usage.size(), 2u);
  // fn-a: (2+1) cpu over (4+2) busy = 0.5 vCPU; peak = 20.
  EXPECT_NEAR(usage.at("fn-a").avg_cpu, 0.5, 1e-9);
  EXPECT_EQ(usage.at("fn-a").peak_memory_mb, 20.0);
  EXPECT_NEAR(usage.at("fn-b").avg_cpu, 1.0, 1e-9);
}

TEST(CallGraphBuilderTest, BuildsGraphWithAlpha) {
  std::vector<Span> spans;
  // 10 workflow invocations.
  for (int i = 0; i < 10; ++i) {
    spans.push_back(MakeSpan(kClientCaller, "root"));
    spans.push_back(MakeSpan("root", "mid"));
    // mid calls leaf 3x per request.
    for (int j = 0; j < 3; ++j) {
      spans.push_back(MakeSpan("mid", "leaf", /*async=*/true));
    }
  }
  std::map<std::string, MetricsStore::FunctionUsage> usage;
  usage["root"] = {0.2, 8.0};
  usage["mid"] = {0.3, 12.0};

  Result<CallGraph> graph = BuildCallGraphFromTraces(spans, usage, "root");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_nodes(), 3);
  EXPECT_EQ(graph->root(), graph->FindNode("root"));
  EXPECT_TRUE(graph->Validate().ok());

  const EdgeId root_mid = graph->FindEdge(graph->FindNode("root"), graph->FindNode("mid"));
  ASSERT_NE(root_mid, -1);
  EXPECT_EQ(graph->edge(root_mid).alpha, 1);
  EXPECT_EQ(graph->edge(root_mid).type, CallType::kSync);
  EXPECT_DOUBLE_EQ(graph->edge(root_mid).weight, 10.0);

  const EdgeId mid_leaf = graph->FindEdge(graph->FindNode("mid"), graph->FindNode("leaf"));
  ASSERT_NE(mid_leaf, -1);
  EXPECT_EQ(graph->edge(mid_leaf).alpha, 3);
  EXPECT_EQ(graph->edge(mid_leaf).type, CallType::kAsync);

  // Node labels: from usage where present, defaults elsewhere.
  EXPECT_DOUBLE_EQ(graph->node(graph->FindNode("root")).cpu, 0.2);
  EXPECT_DOUBLE_EQ(graph->node(graph->FindNode("leaf")).cpu, 0.1);  // Default.
}

TEST(CallGraphBuilderTest, RequiresWorkflowInvocations) {
  std::vector<Span> spans = {MakeSpan("a", "b")};
  EXPECT_FALSE(BuildCallGraphFromTraces(spans, {}, "root").ok());
}

TEST(CallGraphBuilderTest, AlphaIsCeilOfAverage) {
  std::vector<Span> spans;
  for (int i = 0; i < 4; ++i) {
    spans.push_back(MakeSpan(kClientCaller, "root"));
  }
  // 5 calls over 4 invocations -> alpha = ceil(1.25) = 2.
  for (int i = 0; i < 5; ++i) {
    spans.push_back(MakeSpan("root", "leaf"));
  }
  Result<CallGraph> graph = BuildCallGraphFromTraces(spans, {}, "root");
  ASSERT_TRUE(graph.ok());
  const EdgeId edge = graph->FindEdge(graph->FindNode("root"), graph->FindNode("leaf"));
  EXPECT_EQ(graph->edge(edge).alpha, 2);
}

}  // namespace
}  // namespace quilt
