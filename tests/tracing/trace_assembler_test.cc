// Trace assembly, latency decomposition, and Chrome export.
//
// The decomposition tests use hand-sized spans (tens of nanoseconds) so every
// expected segment is computed by hand; the invariant under test -- the five
// segments sum *exactly* to the root span's end-to-end latency -- is scale-
// free, so small numbers lose no generality.
#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/tracing/chrome_trace_exporter.h"
#include "src/tracing/trace_assembler.h"

namespace quilt {
namespace {

Span MakeSpan(int64_t trace_id, int64_t span_id, int64_t parent, const std::string& caller,
              const std::string& callee, SimTime start, SimTime end, SimTime exec_start,
              SimTime exec_end) {
  Span span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_span_id = parent;
  span.caller = caller;
  span.callee = callee;
  span.timestamp = start;
  span.end_time = end;
  span.exec_start = exec_start;
  span.exec_end = exec_end;
  return span;
}

Trace MakeTrace(std::vector<Span> spans) {
  std::vector<Trace> traces = AssembleTraces(spans);
  EXPECT_EQ(traces.size(), 1u);
  return traces.empty() ? Trace{} : traces[0];
}

TEST(AssembleTracesTest, GroupsByTraceIdAndFindsRoots) {
  std::vector<Span> spans;
  spans.push_back(MakeSpan(7, 12, 11, "a", "b", 5, 9, 6, 8));     // No root in trace 7.
  spans.push_back(MakeSpan(3, 8, 2, "root", "mid", 1, 4, 2, 3));  // Out of span-id order.
  spans.push_back(MakeSpan(3, 2, 0, kClientCaller, "root", 0, 6, 1, 5));
  Span legacy;  // trace_id == 0: predates trace identity, not assemblable.
  legacy.caller = "x";
  legacy.callee = "y";
  spans.push_back(legacy);

  const std::vector<Trace> traces = AssembleTraces(spans);
  ASSERT_EQ(traces.size(), 2u);  // Legacy span dropped; ascending trace id.
  EXPECT_EQ(traces[0].trace_id, 3);
  ASSERT_TRUE(traces[0].complete());
  EXPECT_EQ(traces[0].root().span_id, 2);  // Sorted by span id, root found.
  EXPECT_EQ(traces[0].spans[1].span_id, 8);
  EXPECT_EQ(traces[0].workflow(), "root");

  EXPECT_EQ(traces[1].trace_id, 7);
  EXPECT_FALSE(traces[1].complete());  // Root fell outside the window.
}

TEST(DecomposeTraceTest, FailsOnIncompleteOrUnfinishedTraces) {
  Trace no_root;
  no_root.trace_id = 1;
  no_root.spans.push_back(MakeSpan(1, 2, 1, "a", "b", 0, 5, 1, 4));
  EXPECT_EQ(DecomposeTrace(no_root).status().code(), StatusCode::kFailedPrecondition);

  Trace unfinished;
  unfinished.trace_id = 2;
  unfinished.spans.push_back(MakeSpan(2, 1, 0, kClientCaller, "root", 10, 0, 0, 0));
  unfinished.root_index = 0;
  EXPECT_EQ(DecomposeTrace(unfinished).status().code(), StatusCode::kFailedPrecondition);
}

// Hand-computed two-span trace.
//   root: [0,100], exec [25,95], counters net=10 gw=10 q=5 cold=0.
//   child: [30,60], exec [50,58], counters net=4 gw=6 q=2 cold=10.
// Painter sweep: root owns [0,25)+[95,100) as overhead (wall 30, split
// 12/12/6/0 along its counters) and [25,30)+[60,95) as compute (40); the
// child owns [30,50)+[58,60) as overhead (wall 22 = its counters, split
// 4/6/2/10) and [50,58) as compute (8).
TEST(DecomposeTraceTest, HandComputedBreakdownSumsExactly) {
  Span root = MakeSpan(1, 1, 0, kClientCaller, "root", 0, 100, 25, 95);
  root.network_ns = 10;
  root.gateway_ns = 10;
  root.queue_ns = 5;
  Span child = MakeSpan(1, 2, 1, "root", "mid", 30, 60, 50, 58);
  child.network_ns = 4;
  child.gateway_ns = 6;
  child.queue_ns = 2;
  child.cold_start_ns = 10;

  Result<LatencyBreakdown> breakdown = DecomposeTrace(MakeTrace({root, child}));
  ASSERT_TRUE(breakdown.ok()) << breakdown.status().ToString();
  EXPECT_EQ(breakdown->end_to_end, 100);
  EXPECT_EQ(breakdown->network, 16);
  EXPECT_EQ(breakdown->gateway, 18);
  EXPECT_EQ(breakdown->queueing, 8);
  EXPECT_EQ(breakdown->cold_start, 10);
  EXPECT_EQ(breakdown->compute, 48);
  EXPECT_EQ(breakdown->total(), breakdown->end_to_end);
  EXPECT_DOUBLE_EQ(breakdown->overhead_share(), 0.52);
}

TEST(DecomposeTraceTest, OverlappingSiblingsTieBreakToYoungerSpan) {
  // Async fan-out: two depth-1 siblings overlap on [30,50). The older child
  // never executed (pure overhead, all network); the younger one computes
  // for its whole window. The tie must go to the younger span, so [30,50)
  // counts as compute, not network.
  Span root = MakeSpan(1, 1, 0, kClientCaller, "root", 0, 100, 0, 100);
  Span older = MakeSpan(1, 2, 1, "root", "slow-leaf", 10, 50, 0, 0);
  older.network_ns = 1;
  Span younger = MakeSpan(1, 3, 1, "root", "fast-leaf", 30, 70, 30, 70);

  Result<LatencyBreakdown> breakdown = DecomposeTrace(MakeTrace({root, older, younger}));
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ(breakdown->network, 20);  // Only [10,30): the contested interval computed.
  EXPECT_EQ(breakdown->compute, 80);
  EXPECT_EQ(breakdown->total(), breakdown->end_to_end);
}

TEST(DecomposeTraceTest, OverheadSplitIsIntegerExact) {
  // Wall 7 over counters 1/1/1/0: integer division leaves a remainder of 1,
  // which must land on the (first) largest counter so the sum stays exact.
  Span root = MakeSpan(1, 1, 0, kClientCaller, "root", 0, 10, 7, 10);
  root.network_ns = 1;
  root.gateway_ns = 1;
  root.queue_ns = 1;
  Result<LatencyBreakdown> breakdown = DecomposeTrace(MakeTrace({root}));
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ(breakdown->network, 3);
  EXPECT_EQ(breakdown->gateway, 2);
  EXPECT_EQ(breakdown->queueing, 2);
  EXPECT_EQ(breakdown->compute, 3);
  EXPECT_EQ(breakdown->total(), breakdown->end_to_end);
}

TEST(DecomposeTraceTest, CounterlessOverheadChargesGateway) {
  // Never dispatched, no recorded counters: the whole wall is gateway time.
  Span root = MakeSpan(1, 1, 0, kClientCaller, "root", 0, 10, 0, 0);
  Result<LatencyBreakdown> breakdown = DecomposeTrace(MakeTrace({root}));
  ASSERT_TRUE(breakdown.ok());
  EXPECT_EQ(breakdown->gateway, 10);
  EXPECT_EQ(breakdown->compute, 0);
  EXPECT_EQ(breakdown->total(), 10);
}

TEST(SummarizeWorkflowLatencyTest, AggregatesPercentilesAndShares) {
  // Trace 1: e2e 100 = gateway 20 + compute 80. Trace 2: e2e 200 =
  // queueing 50 + compute 150. A trace of another workflow is ignored.
  Span r1 = MakeSpan(1, 1, 0, kClientCaller, "wf", 0, 100, 20, 100);
  r1.gateway_ns = 20;
  Span r2 = MakeSpan(2, 2, 0, kClientCaller, "wf", 500, 700, 550, 700);
  r2.queue_ns = 50;
  Span other = MakeSpan(3, 3, 0, kClientCaller, "elsewhere", 0, 40, 0, 40);
  const std::vector<Trace> traces = AssembleTraces({r1, r2, other});

  const WorkflowLatencySummary summary = SummarizeWorkflowLatency("wf", traces, 999);
  EXPECT_EQ(summary.workflow, "wf");
  EXPECT_EQ(summary.timestamp, 999);
  EXPECT_EQ(summary.traces, 2);
  EXPECT_EQ(summary.ok_traces, 2);
  EXPECT_DOUBLE_EQ(summary.end_to_end.mean, 150.0);
  EXPECT_DOUBLE_EQ(summary.end_to_end.share, 1.0);
  EXPECT_DOUBLE_EQ(summary.compute.mean, 115.0);
  EXPECT_DOUBLE_EQ(summary.gateway.mean, 10.0);
  EXPECT_DOUBLE_EQ(summary.queueing.mean, 25.0);
  EXPECT_DOUBLE_EQ(summary.network.mean, 0.0);
  // Shares are means over the e2e mean; per-trace overhead share averages.
  EXPECT_NEAR(summary.compute.share, 115.0 / 150.0, 1e-12);
  EXPECT_NEAR(summary.overhead_share, (0.2 + 0.25) / 2.0, 1e-12);

  const WorkflowLatencySummary none = SummarizeWorkflowLatency("ghost", traces, 0);
  EXPECT_EQ(none.traces, 0);
}

TEST(ChromeTraceExporterTest, ExportParsesAndCarriesEverySpan) {
  Span root = MakeSpan(9, 1, 0, kClientCaller, "root", Milliseconds(2), Milliseconds(8),
                       Milliseconds(3), Milliseconds(7));
  root.network_ns = Milliseconds(1);
  Span child = MakeSpan(9, 2, 1, "root", "leaf", Milliseconds(4), Milliseconds(6), 0, 0);
  child.status = SpanStatus::kTimeout;
  const Trace trace = MakeTrace({root, child});

  Result<Json> doc = Json::Parse(ExportChromeTrace(trace));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("displayTimeUnit").AsString(), "ms");
  const Json& events = doc->Get("traceEvents");
  ASSERT_TRUE(events.is_array());
  // Two invocation slices plus the root's execution slice (the child never
  // dispatched, so it has no exec slice).
  ASSERT_EQ(events.size(), 3u);
  int root_events = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.At(i);
    EXPECT_EQ(event.Get("ph").AsString(), "X");
    EXPECT_TRUE(event.Get("ts").is_number());
    EXPECT_TRUE(event.Get("dur").is_number());
    EXPECT_GE(event.Get("ts").AsDouble(-1.0), 0.0);  // Relative to the root start.
    if (event.Get("name").AsString() == "root") {
      ++root_events;
      EXPECT_EQ(event.Get("args").Get("trace_id").AsInt(), 9);
      EXPECT_EQ(event.Get("args").Get("status").AsString(), "ok");
    }
    if (event.Get("name").AsString() == "leaf") {
      EXPECT_EQ(event.Get("args").Get("status").AsString(), "timeout");
      EXPECT_EQ(event.Get("args").Get("parent_span_id").AsInt(), 1);
      // Overlaps the root, so the greedy lane assignment moves it off lane 1.
      EXPECT_EQ(event.Get("tid").AsInt(), 2);
    }
  }
  EXPECT_EQ(root_events, 1);
}

}  // namespace
}  // namespace quilt
