// Rate-card arithmetic: rounding, minimum windows and the exact integer
// charge math (nanodollars, 128-bit multiply + floor divide). All expected
// values are hand-computed from the card constants.
#include "src/billing/pricing_profile.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

TEST(PricingProfileTest, PresetFields) {
  const PricingProfile per_ms = PricingProfile::PerMillisecond();
  EXPECT_EQ(per_ms.name, "per-ms");
  EXPECT_EQ(per_ms.request_fee_nanos, 200);
  EXPECT_EQ(per_ms.gb_second_nanos, 16667);
  EXPECT_EQ(per_ms.vcpu_second_nanos, 0);
  EXPECT_EQ(per_ms.granularity_us, 1000);
  EXPECT_EQ(per_ms.min_billed_us, 1000);
  EXPECT_EQ(per_ms.cold_start, ColdStartBilling::kFree);

  const PricingProfile coarse = PricingProfile::Coarse100Ms();
  EXPECT_EQ(coarse.name, "coarse-100ms");
  EXPECT_EQ(coarse.request_fee_nanos, 400);
  EXPECT_EQ(coarse.gb_second_nanos, 4000);
  EXPECT_EQ(coarse.vcpu_second_nanos, 20000);
  EXPECT_EQ(coarse.granularity_us, 100000);
  EXPECT_EQ(coarse.min_billed_us, 100000);
  EXPECT_EQ(coarse.cold_start, ColdStartBilling::kBilled);
}

TEST(PricingProfileTest, BilledDurationRoundsUpAndFloors) {
  const PricingProfile per_ms = PricingProfile::PerMillisecond();
  EXPECT_EQ(per_ms.BilledDurationUs(-5), 1000);  // Clamp, then minimum.
  EXPECT_EQ(per_ms.BilledDurationUs(0), 1000);
  EXPECT_EQ(per_ms.BilledDurationUs(1), 1000);
  EXPECT_EQ(per_ms.BilledDurationUs(999), 1000);
  EXPECT_EQ(per_ms.BilledDurationUs(1000), 1000);  // Exact boundary: no bump.
  EXPECT_EQ(per_ms.BilledDurationUs(1001), 2000);
  EXPECT_EQ(per_ms.BilledDurationUs(2000), 2000);

  const PricingProfile coarse = PricingProfile::Coarse100Ms();
  EXPECT_EQ(coarse.BilledDurationUs(1), 100000);
  EXPECT_EQ(coarse.BilledDurationUs(100000), 100000);
  EXPECT_EQ(coarse.BilledDurationUs(100001), 200000);
}

TEST(PricingProfileTest, BilledDurationDegenerateCard) {
  // Zero granularity falls back to 1 us steps; zero minimum passes raw
  // windows through untouched.
  PricingProfile card;
  card.granularity_us = 0;
  card.min_billed_us = 0;
  EXPECT_EQ(card.BilledDurationUs(7), 7);
  EXPECT_EQ(card.BilledDurationUs(0), 0);
  card.min_billed_us = 250;
  EXPECT_EQ(card.BilledDurationUs(7), 250);
}

TEST(PricingProfileTest, ComputeCostIsExactIntegerArithmetic) {
  const PricingProfile per_ms = PricingProfile::PerMillisecond();
  // 1 ms at 128 MB (131072 KB): 1000 * 131072 * 16667 / (2^20 * 1e6)
  //   = 2'184'577'024'000 / 1'048'576'000'000 = 2.083... -> floor 2.
  EXPECT_EQ(per_ms.ComputeCostNanos(1000, 131072, 2000), 2);
  // 80 ms at 128 MB: 80x the numerator -> 166.66... -> floor 166.
  EXPECT_EQ(per_ms.ComputeCostNanos(80000, 131072, 2000), 166);
  // One full GB-second divides exactly: 1 s at 1 GB = the GB-second rate.
  EXPECT_EQ(per_ms.ComputeCostNanos(1000000, 1048576, 0), 16667);

  const PricingProfile coarse = PricingProfile::Coarse100Ms();
  // 100 ms at 128 MB: 100000 * 131072 * 4000 / 2^20e6 = 50 exactly.
  // vCPU: 100000 * 2000 * 20000 / 1e9 = 4000 exactly.
  EXPECT_EQ(coarse.ComputeCostNanos(100000, 131072, 2000), 4050);
  EXPECT_EQ(coarse.ComputeCostNanos(100000, 131072, 0), 50);
}

TEST(PricingProfileTest, LimitQuantization) {
  EXPECT_EQ(MemoryKb(128.0), 131072);
  EXPECT_EQ(MemoryKb(0.5), 512);
  EXPECT_EQ(MemoryKb(-3.0), 0);
  EXPECT_EQ(CpuMillicores(2.0), 2000);
  EXPECT_EQ(CpuMillicores(0.25), 250);
  EXPECT_EQ(CpuMillicores(-1.0), 0);
}

TEST(PricingProfileTest, DollarsPerSecondContinuousRate) {
  const PricingProfile per_ms = PricingProfile::PerMillisecond();
  // 1 GB, any CPU: the memory-only card charges the GB-second rate.
  EXPECT_DOUBLE_EQ(per_ms.DollarsPerSecond(1024.0, 4.0), 16667e-9);
  const PricingProfile coarse = PricingProfile::Coarse100Ms();
  EXPECT_DOUBLE_EQ(coarse.DollarsPerSecond(1024.0, 1.0), (4000.0 + 20000.0) * 1e-9);
}

}  // namespace
}  // namespace quilt
