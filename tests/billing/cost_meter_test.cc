// CostMeter attribution: exact dollars for retries and cold starts under
// both cold-start policies, exact-sum aggregation, the retired CPU-seconds
// ledger facade, and infrastructure dollars from node telemetry.
#include "src/billing/cost_meter.h"

#include <gtest/gtest.h>

#include "src/common/cost_record.h"

namespace quilt {
namespace {

TEST(CostMeterTest, RetriesBillExactDollarsColdFree) {
  // per-ms card, cold starts free: the 3000 us cold wait never enters the
  // window. exec 2500 us rounds to 3000 us; compute at 128 MB =
  // 3000 * 131072 * 16667 / 2^20e6 = 6.25 -> 6; charge = fee 200 + 6.
  CostMeter meter(PricingProfile::PerMillisecond());
  EXPECT_EQ(meter.MeterAttempt("fn", 2500, 3000, 128.0, 2.0, false), 206);
  // The retry is its own billed attempt at the same price.
  EXPECT_EQ(meter.MeterAttempt("fn", 2500, 3000, 128.0, 2.0, false), 206);

  const CostRecord record = meter.RecordFor("fn");
  EXPECT_EQ(record.attempts, 2);
  EXPECT_EQ(record.billed_us, 6000);
  EXPECT_EQ(record.cold_start_us, 0);  // kFree: provider absorbs the wait.
  EXPECT_EQ(record.request_fee_nanos, 400);
  EXPECT_EQ(record.compute_nanos, 12);
  EXPECT_EQ(record.total_nanos, 412);
  EXPECT_EQ(meter.TotalNanos(), 412);
  EXPECT_EQ(meter.TotalAttempts(), 2);
}

TEST(CostMeterTest, ColdStartsBilledUnderCoarseCard) {
  // coarse-100ms card bills the cold wait: attempt 1 window = 2500 + 3000 ->
  // 100 ms minimum; compute = 50 (mem) + 4000 (2 vCPU) = 4050; charge 4450.
  CostMeter meter(PricingProfile::Coarse100Ms());
  EXPECT_EQ(meter.MeterAttempt("fn", 2500, 3000, 128.0, 2.0, false), 4450);
  // Attempt 2: 150 ms exec + 60 ms cold = 210 ms -> 300 ms billed;
  // compute = 150 + 12000 = 12150; charge 12550.
  EXPECT_EQ(meter.MeterAttempt("fn", 150000, 60000, 128.0, 2.0, false), 12550);

  const CostRecord record = meter.RecordFor("fn");
  EXPECT_EQ(record.attempts, 2);
  EXPECT_EQ(record.billed_us, 400000);
  EXPECT_EQ(record.cold_start_us, 63000);  // Both waits, pre-rounding.
  EXPECT_EQ(record.request_fee_nanos, 800);
  EXPECT_EQ(record.compute_nanos, 16200);
  EXPECT_EQ(record.total_nanos, 17000);
  EXPECT_EQ(meter.TotalNanos(), 17000);
}

TEST(CostMeterTest, MinimumWindowAndNegativeClamp) {
  CostMeter meter(PricingProfile::PerMillisecond());
  // A sub-millisecond attempt still pays the 1 ms minimum: compute 2.
  EXPECT_EQ(meter.MeterAttempt("fn", 500, 0, 128.0, 2.0, false), 202);
  // Negative windows clamp to zero, then the minimum applies.
  EXPECT_EQ(meter.MeterAttempt("fn", -17, -5, 128.0, 2.0, false), 202);
  EXPECT_EQ(meter.RecordFor("fn").billed_us, 2000);
}

TEST(CostMeterTest, AggregateBillIsSumOfLines) {
  CostMeter meter(PricingProfile::Coarse100Ms());
  meter.MeterAttempt("c-handle", 2500, 0, 128.0, 2.0, false);
  meter.MeterAttempt("a-handle", 42, 3000, 64.0, 1.0, true);
  meter.MeterAttempt("b-handle", 130000, 0, 128.0, 0.5, false);
  meter.MeterAttempt("a-handle", 42, 0, 64.0, 1.0, false);

  const std::vector<CostRecord> records = meter.Records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].handle, "a-handle");  // Sorted by handle.
  EXPECT_EQ(records[1].handle, "b-handle");
  EXPECT_EQ(records[2].handle, "c-handle");

  int64_t total = 0;
  int64_t attempts = 0;
  for (const CostRecord& r : records) {
    EXPECT_EQ(r.total_nanos, r.request_fee_nanos + r.compute_nanos) << r.handle;
    EXPECT_GE(r.canary_nanos, 0);
    EXPECT_LE(r.canary_nanos, r.total_nanos);
    total += r.total_nanos;
    attempts += r.attempts;
  }
  EXPECT_EQ(total, meter.TotalNanos());
  EXPECT_EQ(attempts, meter.TotalAttempts());

  // Canary subtotal tracks exactly the attempts flagged canary.
  EXPECT_EQ(records[0].attempts, 2);
  EXPECT_EQ(records[0].canary_attempts, 1);
  EXPECT_EQ(records[0].canary_nanos, records[0].total_nanos / 2);
}

TEST(CostMeterTest, CpuLedgerKeepsZeroAccruals) {
  CostMeter meter;
  meter.BillCpu("idle", 0.0);
  meter.BillCpu("busy", 1500.0);
  EXPECT_DOUBLE_EQ(meter.BilledCpuSeconds("busy"), 1.5);
  EXPECT_DOUBLE_EQ(meter.BilledCpuSeconds("idle"), 0.0);
  EXPECT_DOUBLE_EQ(meter.BilledCpuSeconds("never"), 0.0);

  // "Invoked but idle" stays in the ledger; "never invoked" does not.
  const std::map<std::string, double> ledger = meter.CpuLedger();
  ASSERT_EQ(ledger.count("idle"), 1u);
  EXPECT_DOUBLE_EQ(ledger.at("idle"), 0.0);
  EXPECT_DOUBLE_EQ(ledger.at("busy"), 1.5);
  EXPECT_EQ(ledger.count("never"), 0u);

  // CPU accrual alone is not a billed attempt: no cost lines yet.
  EXPECT_TRUE(meter.Records().empty());
}

TEST(CostMeterTest, RecordForUnknownHandleIsZero) {
  CostMeter meter;
  const CostRecord record = meter.RecordFor("ghost");
  EXPECT_EQ(record.handle, "ghost");
  EXPECT_EQ(record.attempts, 0);
  EXPECT_EQ(record.total_nanos, 0);
}

TEST(CostMeterTest, ClearDropsChargesKeepsCard) {
  CostMeter meter(PricingProfile::PerMillisecond());
  meter.MeterAttempt("fn", 2500, 0, 128.0, 2.0, false);
  meter.BillCpu("fn", 1000.0);
  meter.Clear();
  EXPECT_EQ(meter.TotalNanos(), 0);
  EXPECT_EQ(meter.TotalAttempts(), 0);
  EXPECT_TRUE(meter.Records().empty());
  EXPECT_TRUE(meter.CpuLedger().empty());
  EXPECT_DOUBLE_EQ(meter.BilledCpuSeconds("fn"), 0.0);
  // Same attempt, same price: the rate card survived the reset.
  EXPECT_EQ(meter.MeterAttempt("fn", 2500, 0, 128.0, 2.0, false), 206);
}

TEST(CostMeterTest, InfraCostFromNodeSamples) {
  CostMeter meter(PricingProfile::PerMillisecond());  // node rate 27778/s.
  NodeSample first;
  first.node_id = 0;
  first.timestamp = 0;
  first.cpu_capacity = 4.0;
  first.cpu_used = 4.0;  // Fully allocated, but allocation is not work:
  first.cpu_busy = 1.0;  // only 25% busy at the interval's left endpoint.
  NodeSample second = first;
  second.timestamp = 1000000000;  // +1 s.
  second.cpu_busy = 4.0;          // Right endpoint utilization is not used.

  const CostMeter::InfraCost infra = meter.InfraCostFromNodes({first, second});
  EXPECT_EQ(infra.node_nanos, 27778);
  EXPECT_EQ(infra.idle_nanos, 27778 * 750 / 1000);  // 75% idle -> 20833.
  EXPECT_NEAR(infra.IdleFraction(), 0.75, 1e-3);

  // A lone sample spans no interval: nothing is paid.
  const CostMeter::InfraCost lone = meter.InfraCostFromNodes({first});
  EXPECT_EQ(lone.node_nanos, 0);
  EXPECT_EQ(lone.idle_nanos, 0);
}

TEST(CostMeterTest, CostRecordLineCanonicalFormat) {
  CostMeter meter(PricingProfile::PerMillisecond());
  meter.MeterAttempt("fn", 2500, 0, 128.0, 2.0, true);
  EXPECT_EQ(CostRecordLine(meter.RecordFor("fn")),
            "handle=fn attempts=1 billed_us=3000 cold_us=0 fee_nanos=200 "
            "compute_nanos=6 total_nanos=206 canary_attempts=1 canary_nanos=206");
  EXPECT_EQ(FormatNanodollars(1234567890), "$1.234567");
  EXPECT_EQ(FormatNanodollars(-206000), "-$0.000206");
  EXPECT_EQ(FormatNanodollars(0), "$0.000000");
}

}  // namespace
}  // namespace quilt
