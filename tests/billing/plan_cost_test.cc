// Plan economics: measured durations + a rate card -> per-edge cut/merge
// dollar rates for the blended solver objective. The load-bearing asymmetry:
// a sync callee rides inside the caller's already-billed window when merged
// (cutting it double-bills), while an async callee's work extends the host's
// window either way.
#include "src/billing/plan_cost.h"

#include <gtest/gtest.h>

#include "src/graph/call_graph.h"

namespace quilt {
namespace {

TEST(PlanCostTest, MeanExecSecondsSkipsUndispatchedSpans) {
  Span fast;
  fast.callee = "b";
  fast.exec_start = 1000000;
  fast.exec_end = 3000000;  // 2 ms.
  Span slow;
  slow.callee = "b";
  slow.exec_start = 0;
  slow.exec_end = 4000000;  // 4 ms.
  Span dead;
  dead.callee = "skip";
  dead.exec_start = 5;
  dead.exec_end = 5;  // Never dispatched.

  const std::map<std::string, double> means = MeanExecSecondsBySpan({fast, slow, dead});
  ASSERT_EQ(means.size(), 1u);
  EXPECT_DOUBLE_EQ(means.at("b"), 0.003);
}

TEST(PlanCostTest, SyncCalleeRidesCallerWindowForFree) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 100);
  const NodeId b = g.AddNode("b", 0.2, 50);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());

  PlanCostInputs inputs;
  inputs.profile = PricingProfile::PerMillisecond();
  inputs.exec_seconds = {{"a", 0.010}, {"b", 0.004}};
  const PlanCostModel model = BuildPlanCostModel(g, inputs);
  ASSERT_EQ(model.cut_cost.size(), 1u);
  ASSERT_EQ(model.merge_cost.size(), 1u);

  const PricingProfile& card = inputs.profile;
  const double rate_b = card.DollarsPerSecond(50.0, 0.2);
  // Cut: 10 calls each paying the fee plus b's own rounded 4 ms window.
  EXPECT_DOUBLE_EQ(model.cut_cost[0], 10.0 * (200e-9 + 0.004 * rate_b));
  // Merged: no window time (sync callee already sits inside a's billed
  // window); only b's memory carried over a's 10 ms window. With a
  // memory-only card that carry rate equals b's full per-second rate.
  EXPECT_DOUBLE_EQ(model.merge_cost[0], 10.0 * 0.010 * rate_b);
  // Cutting this sync edge costs real money; merging is strictly cheaper.
  EXPECT_GT(model.cut_cost[0], model.merge_cost[0]);
}

TEST(PlanCostTest, AsyncCalleeExtendsHostWindow) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 100);
  const NodeId b = g.AddNode("b", 0.2, 50);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kAsync).ok());

  PlanCostInputs inputs;
  inputs.profile = PricingProfile::PerMillisecond();
  inputs.exec_seconds = {{"a", 0.010}, {"b", 0.004}};
  const PlanCostModel model = BuildPlanCostModel(g, inputs);

  const double rate_b = inputs.profile.DollarsPerSecond(50.0, 0.2);
  // Merged async work joins the host's window: the callee's own 4 ms of
  // compute bills on top of the memory carry.
  EXPECT_DOUBLE_EQ(model.merge_cost[0], 10.0 * (0.004 * rate_b + 0.010 * rate_b));
}

TEST(PlanCostTest, CutWindowRoundsUpPerCard) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 100);
  const NodeId b = g.AddNode("b", 0.2, 50);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 1, 1, CallType::kSync).ok());

  PlanCostInputs inputs;
  inputs.profile = PricingProfile::Coarse100Ms();
  inputs.exec_seconds = {{"a", 0.010}, {"b", 0.004}};
  const PlanCostModel model = BuildPlanCostModel(g, inputs);
  // 4 ms of exec bills as a full 100 ms window when cut -- rounding waste
  // is what makes merging short functions pay on coarse cards.
  const double rate_b = inputs.profile.DollarsPerSecond(50.0, 0.2);
  EXPECT_DOUBLE_EQ(model.cut_cost[0], 400e-9 + 0.100 * rate_b);
}

TEST(PlanCostTest, DefaultDurationCoversUnmeasuredHandles) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 100);
  const NodeId b = g.AddNode("b", 0.2, 50);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 1, 1, CallType::kSync).ok());

  PlanCostInputs inputs;
  inputs.profile = PricingProfile::PerMillisecond();
  inputs.default_exec_seconds = 0.002;  // No measured spans at all.
  const PlanCostModel model = BuildPlanCostModel(g, inputs);
  const double rate_b = inputs.profile.DollarsPerSecond(50.0, 0.2);
  EXPECT_DOUBLE_EQ(model.cut_cost[0], 200e-9 + 0.002 * rate_b);
  EXPECT_DOUBLE_EQ(model.merge_cost[0], 0.002 * rate_b);
}

TEST(PlanCostTest, ScaleNormalizesAllCutDollarsToEdgeWeight) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 100);
  const NodeId b = g.AddNode("b", 0.2, 50);
  const NodeId c = g.AddNode("c", 0.2, 50);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, c, 5, 1, CallType::kSync).ok());

  PlanCostInputs inputs;
  inputs.profile = PricingProfile::PerMillisecond();
  inputs.exec_seconds = {{"a", 0.010}, {"b", 0.004}, {"c", 0.002}};
  const PlanCostModel model = BuildPlanCostModel(g, inputs);

  double all_cut = 0.0;
  for (double cut : model.cut_cost) {
    all_cut += cut;
  }
  ASSERT_GT(all_cut, 0.0);
  EXPECT_DOUBLE_EQ(model.scale, g.TotalEdgeWeight() / all_cut);
  EXPECT_DOUBLE_EQ(model.base, 0.0);
  // λ comes from SolverOptions.cost_weight, never from the model itself.
  EXPECT_DOUBLE_EQ(model.weight, 1.0);
}

}  // namespace
}  // namespace quilt
