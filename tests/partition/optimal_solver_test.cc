#include "src/partition/optimal_solver.h"

#include <gtest/gtest.h>

#include "src/graph/random_dag.h"
#include "src/partition/ilp_encoding.h"

namespace quilt {
namespace {

TEST(OptimalSolverTest, FullMergeWhenEverythingFits) {
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 10);
  const NodeId b = g.AddNode("B", 0.1, 10);
  const NodeId c = g.AddNode("C", 0.1, 10);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(b, c, 10, 1, CallType::kSync).ok());
  MergeProblem problem{&g, 2.0, 128.0};
  OptimalSolver solver;
  Result<MergeSolution> solution = solver.Solve(problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->cross_cost, 0.0);
  EXPECT_TRUE(solution->IsFullMerge(g));
}

TEST(OptimalSolverTest, PicksCheapestCut) {
  // Chain A -(10)-> B -(99)-> C with memory for only two nodes together:
  // the optimum cuts the cheap A->B edge.
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 60);
  const NodeId b = g.AddNode("B", 0.1, 60);
  const NodeId c = g.AddNode("C", 0.1, 60);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(b, c, 99, 1, CallType::kSync).ok());
  MergeProblem problem{&g, 2.0, 130.0};
  OptimalSolver solver;
  SolverStats stats;
  Result<MergeSolution> solution = solver.Solve(problem, {}, &stats);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->cross_cost, 10.0);
  EXPECT_TRUE(CheckSolution(problem, *solution).ok());
  EXPECT_TRUE(stats.exhaustive);
  EXPECT_GT(stats.feasible_sets, 0);
}

TEST(OptimalSolverTest, AppendixAExampleMoreSubgraphsCanBeBetter) {
  // Appendix A, Figure 11: 7 functions, memory limit 60.
  // Node memory and edge weights chosen per the figure's structure: a root
  // fans out to two heavy branches plus a light one; with 4 subgraphs the
  // cheap edges are cut instead of an expensive one.
  CallGraph g;
  const NodeId r = g.AddNode("r", 0.01, 20);
  const NodeId a = g.AddNode("a", 0.01, 30);
  const NodeId b = g.AddNode("b", 0.01, 30);
  const NodeId c = g.AddNode("c", 0.01, 30);
  const NodeId d = g.AddNode("d", 0.01, 30);
  const NodeId e = g.AddNode("e", 0.01, 25);
  const NodeId f = g.AddNode("f", 0.01, 25);
  ASSERT_TRUE(g.AddEdgeWithAlpha(r, a, 1, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 100, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(r, c, 1, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(c, d, 100, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(r, e, 2, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(e, f, 3, 1, CallType::kSync).ok());
  MergeProblem problem{&g, 8.0, 60.0};
  OptimalSolver solver;
  Result<MergeSolution> solution = solver.Solve(problem);
  ASSERT_TRUE(solution.ok());
  // Best: groups {r}, {a,b}, {c,d}, {e,f}: cut r->a, r->c, r->e = 4.
  EXPECT_DOUBLE_EQ(solution->cross_cost, 4.0);
  EXPECT_EQ(solution->num_groups(), 4);
}

TEST(OptimalSolverTest, InfeasibleWhenPairTooLarge) {
  // Two nodes that cannot be merged and constraints force them together?
  // A single function always fits alone, so a valid grouping always exists:
  // every node its own group. Verify the solver finds it.
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.5, 100);
  const NodeId b = g.AddNode("B", 0.5, 100);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  MergeProblem problem{&g, 2.0, 150.0};
  OptimalSolver solver;
  Result<MergeSolution> solution = solver.Solve(problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->cross_cost, 10.0);
  EXPECT_EQ(solution->num_groups(), 2);
}

TEST(OptimalSolverTest, MatchesBruteForceOnRandomGraphs) {
  // Cross-check the k-sweep + ILP against exhaustive root-set + ILP-free
  // verification: the optimal cross cost must never exceed any feasible
  // solution's cost that CheckSolution accepts.
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    RandomDagOptions options;
    options.num_nodes = 6;
    CallGraph g = GenerateRandomRdag(options, rng);
    // Limits sized so roughly half the graph fits per group.
    double total_mem = 0.0;
    double total_cpu = 0.0;
    double max_mem = 0.0;
    double max_cpu = 0.0;
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      total_mem += g.node(id).memory;
      total_cpu += g.node(id).cpu;
      max_mem = std::max(max_mem, g.node(id).memory);
      max_cpu = std::max(max_cpu, g.node(id).cpu);
    }
    MergeProblem problem{&g, std::max(total_cpu * 0.7, max_cpu * 1.5),
                         std::max(total_mem * 0.7, max_mem * 1.5)};
    OptimalSolver solver;
    Result<MergeSolution> solution = solver.Solve(problem);
    ASSERT_TRUE(solution.ok()) << "trial " << trial;
    EXPECT_TRUE(CheckSolution(problem, *solution).ok()) << "trial " << trial;
    EXPECT_DOUBLE_EQ(solution->cross_cost, ComputeCrossCost(g, *solution));
    // Sanity: never worse than the no-merge baseline.
    EXPECT_LE(solution->cross_cost, g.TotalEdgeWeight());
  }
}

TEST(OptimalSolverTest, CandidateSetLimitStopsEarly) {
  Rng rng(5);
  RandomDagOptions options;
  options.num_nodes = 8;
  CallGraph g = GenerateRandomRdag(options, rng);
  MergeProblem problem{&g, 100.0, 10000.0};
  OptimalSolver solver;
  SolverOptions solver_options;
  solver_options.max_candidate_sets = 3;
  SolverStats stats;
  Result<MergeSolution> solution = solver.Solve(problem, solver_options, &stats);
  EXPECT_LE(stats.candidate_sets_tried, 3);
  // Everything fits here, so even k=1 finds the full merge.
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->cross_cost, 0.0);
}

}  // namespace
}  // namespace quilt
