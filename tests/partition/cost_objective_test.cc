// The dollar term of the blended objective λ·latency + (1−λ)·$: with λ = 1
// every solver is byte-identical to the latency-only path; below 1 the cost
// model can flip which edge gets cut; PlanDollarCost prices a finished plan.
#include <gtest/gtest.h>

#include "src/partition/grasp_solver.h"
#include "src/partition/heuristic_solver.h"
#include "src/partition/merge_solver.h"
#include "src/partition/metrics.h"
#include "src/partition/optimal_solver.h"
#include "src/partition/problem.h"

namespace quilt {
namespace {

// Chain A -(10)-> B -(99)-> C, memory for any two nodes together. The
// latency optimum cuts the cheap A->B edge; the attached dollar model makes
// that cut 1000x more expensive than cutting B->C.
struct ChainFixture {
  CallGraph g;
  NodeId a, b, c;

  ChainFixture() {
    a = g.AddNode("A", 0.1, 60);
    b = g.AddNode("B", 0.1, 60);
    c = g.AddNode("C", 0.1, 60);
    EXPECT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
    EXPECT_TRUE(g.AddEdgeWithAlpha(b, c, 99, 1, CallType::kSync).ok());
  }

  MergeProblem Problem(double lambda) const {
    MergeProblem problem{&g, 2.0, 130.0};
    problem.cost.weight = lambda;
    problem.cost.scale = 1.0;
    problem.cost.cut_cost = {1000.0, 1.0};  // $: cutting A->B is ruinous.
    problem.cost.merge_cost = {0.0, 0.0};
    return problem;
  }
};

TEST(CostObjectiveTest, ModelActivationRules) {
  PlanCostModel model;
  model.cut_cost = {1.0, 2.0};
  model.merge_cost = {0.0, 0.0};
  model.weight = 1.0;
  EXPECT_FALSE(model.active(2));  // λ = 1 switches the term off entirely.
  model.weight = 0.5;
  EXPECT_TRUE(model.active(2));
  EXPECT_FALSE(model.active(3));  // Vectors must cover the graph.
}

TEST(CostObjectiveTest, EdgeCoefAndOffsetArithmetic) {
  PlanCostModel model;
  model.weight = 0.25;
  model.scale = 2.0;
  model.merge_cost = {1.0, 2.0};
  model.cut_cost = {4.0, 5.0};
  model.base = 3.0;
  // coef = λ·w + (1−λ)·scale·(cut − merge).
  EXPECT_DOUBLE_EQ(model.EdgeCoef(5.0, 4.0, 1.0), 0.25 * 5.0 + 0.75 * 2.0 * 3.0);
  // Offset = (1−λ)·scale·(base + Σ merge).
  EXPECT_DOUBLE_EQ(model.Offset(), 0.75 * 2.0 * (3.0 + 1.0 + 2.0));
}

TEST(CostObjectiveTest, LambdaOneIsByteIdenticalToLatencyOnly) {
  const ChainFixture fx;
  MergeProblem plain{&fx.g, 2.0, 130.0};  // No cost model at all.
  const MergeProblem priced = fx.Problem(1.0);

  OptimalSolver optimal;
  DownstreamImpactScorer scorer;
  HeuristicSolver heuristic(scorer);
  GraspSolver grasp(scorer);
  for (MergeSolver* solver :
       std::initializer_list<MergeSolver*>{&optimal, &heuristic, &grasp}) {
    Result<MergeSolution> without = solver->Solve(plain);
    Result<MergeSolution> with = solver->Solve(priced);
    ASSERT_TRUE(without.ok());
    ASSERT_TRUE(with.ok());
    EXPECT_EQ(SolutionToString(fx.g, *without), SolutionToString(fx.g, *with));
    EXPECT_DOUBLE_EQ(without->cross_cost, with->cross_cost);
  }
}

TEST(CostObjectiveTest, CostWeightFlipsWhichEdgeIsCut) {
  const ChainFixture fx;
  OptimalSolver solver;

  // Default options carry λ = 1: pure latency, cut the light A->B edge
  // (weight 10) even though that cut costs $1000.
  Result<MergeSolution> latency = solver.Solve(fx.Problem(1.0));
  ASSERT_TRUE(latency.ok());
  EXPECT_DOUBLE_EQ(latency->cross_cost, 10.0);
  EXPECT_DOUBLE_EQ(PlanDollarCost(fx.g, *latency, fx.Problem(0.0).cost), 1000.0);

  // λ = 0 through the controller's knob: pure dollars, cut B->C instead
  // (costs $1) even though its latency weight is 99. With the cost term
  // active, the reported cross_cost is the blended objective -- here just
  // the dollar side, scale 1, zero merge floor.
  SolverOptions dollar_options;
  dollar_options.cost_weight = 0.0;
  Result<MergeSolution> dollars = solver.Solve(fx.Problem(1.0), dollar_options);
  ASSERT_TRUE(dollars.ok());
  EXPECT_DOUBLE_EQ(ComputeCrossCost(fx.g, *dollars), 99.0);
  EXPECT_DOUBLE_EQ(PlanDollarCost(fx.g, *dollars, fx.Problem(0.0).cost), 1.0);
  EXPECT_DOUBLE_EQ(dollars->cross_cost, 1.0);
  EXPECT_TRUE(CheckSolution(fx.Problem(0.0), *dollars).ok());
}

TEST(CostObjectiveTest, SolverOptionsLambdaWinsOverProblemLambda) {
  // WithCostWeight re-stamps λ without touching anything else...
  const ChainFixture fx;
  const MergeProblem original = fx.Problem(1.0);
  const MergeProblem reweighted = WithCostWeight(original, 0.25);
  EXPECT_DOUBLE_EQ(reweighted.cost.weight, 0.25);
  EXPECT_EQ(reweighted.graph, original.graph);
  EXPECT_EQ(reweighted.cost.cut_cost, original.cost.cut_cost);
  // ... and the original is untouched (solvers copy, they do not mutate).
  EXPECT_DOUBLE_EQ(original.cost.weight, 1.0);

  // Every solver re-stamps the problem's λ from SolverOptions, so a problem
  // arriving with λ < 1 still solves latency-only under default options --
  // this is what keeps the λ = 1 configuration byte-identical to the
  // pre-billing decision path no matter what the problem carries.
  OptimalSolver solver;
  Result<MergeSolution> solution = solver.Solve(fx.Problem(0.0));
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->cross_cost, 10.0);
}

TEST(CostObjectiveTest, PlanDollarCostPricesCutAndMergeSides) {
  const ChainFixture fx;
  PlanCostModel cost;
  cost.cut_cost = {7.0, 11.0};
  cost.merge_cost = {2.0, 3.0};
  cost.base = 1.0;

  // Baseline cuts everything; full merge keeps everything internal.
  EXPECT_DOUBLE_EQ(PlanDollarCost(fx.g, BaselineSolution(fx.g), cost),
                   1.0 + 7.0 + 11.0);
  EXPECT_DOUBLE_EQ(PlanDollarCost(fx.g, FullMergeSolution(fx.g), cost),
                   1.0 + 2.0 + 3.0);

  // Vectors that do not cover the graph price as zero (inert model).
  PlanCostModel short_model;
  short_model.cut_cost = {7.0};
  EXPECT_DOUBLE_EQ(PlanDollarCost(fx.g, BaselineSolution(fx.g), short_model), 0.0);
}

}  // namespace
}  // namespace quilt
