#include "src/partition/problem.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

// Figure-3-like graph: root calls three uploaders, which all call
// compose-and-upload.
CallGraph MovieReviewLike() {
  CallGraph g;
  const NodeId root = g.AddNode("compose-review", 0.2, 40);
  const NodeId uid = g.AddNode("upload-user-id", 0.1, 20);
  const NodeId rating = g.AddNode("upload-rating", 0.1, 20);
  const NodeId text = g.AddNode("upload-text", 0.1, 30);
  const NodeId cau = g.AddNode("compose-and-upload", 0.15, 25);
  EXPECT_TRUE(g.AddEdgeWithAlpha(root, uid, 100, 1, CallType::kAsync).ok());
  EXPECT_TRUE(g.AddEdgeWithAlpha(root, rating, 100, 1, CallType::kAsync).ok());
  EXPECT_TRUE(g.AddEdgeWithAlpha(root, text, 100, 1, CallType::kAsync).ok());
  EXPECT_TRUE(g.AddEdgeWithAlpha(uid, cau, 100, 1, CallType::kSync).ok());
  EXPECT_TRUE(g.AddEdgeWithAlpha(rating, cau, 100, 1, CallType::kSync).ok());
  EXPECT_TRUE(g.AddEdgeWithAlpha(text, cau, 100, 1, CallType::kSync).ok());
  return g;
}

TEST(MergeProblemTest, ValidateAcceptsReasonableProblem) {
  CallGraph g = MovieReviewLike();
  MergeProblem problem{&g, 2.0, 256.0};
  EXPECT_TRUE(problem.Validate().ok());
}

TEST(MergeProblemTest, ValidateRejectsNullGraph) {
  MergeProblem problem{nullptr, 2.0, 256.0};
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(MergeProblemTest, ValidateRejectsOversizedFunction) {
  CallGraph g = MovieReviewLike();
  MergeProblem problem{&g, 2.0, 25.0};  // compose-review needs 40 MB.
  EXPECT_EQ(problem.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(MergeProblemTest, ValidateRejectsNonPositiveLimits) {
  CallGraph g = MovieReviewLike();
  EXPECT_FALSE((MergeProblem{&g, 0.0, 256.0}).Validate().ok());
  EXPECT_FALSE((MergeProblem{&g, 2.0, -1.0}).Validate().ok());
}

TEST(GroupResourcesTest, FullMergeAccounting) {
  CallGraph g = MovieReviewLike();
  const MergeSolution full = FullMergeSolution(g);
  const GroupResources res = ComputeGroupResources(g, full.groups[0]);
  // CPU: root 0.2 + three async callees (0.1 each, alpha 1) + cau via three
  // edges (0.15 * 3) = 0.2 + 0.3 + 0.45 = 0.95.
  EXPECT_NEAR(res.cpu, 0.95, 1e-9);
  // Memory: 40 + (20+20+30) + cau counted per internal edge (25*3) = 185.
  EXPECT_NEAR(res.memory, 185.0, 1e-9);
}

TEST(GroupResourcesTest, AsyncAlphaAddsConcurrentInstances) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 10);
  const NodeId b = g.AddNode("b", 0.2, 50);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 300, 3, CallType::kAsync).ok());
  const GroupResources res = ComputeGroupResources(g, MergeGroup{a, {a, b}});
  EXPECT_NEAR(res.cpu, 0.1 + 3 * 0.2, 1e-9);
  EXPECT_NEAR(res.memory, 10 + 50 + 2 * 50, 1e-9);
}

TEST(CrossCostTest, BaselineCostsAllEdges) {
  CallGraph g = MovieReviewLike();
  const MergeSolution baseline = BaselineSolution(g);
  EXPECT_DOUBLE_EQ(baseline.cross_cost, 600.0);
  EXPECT_DOUBLE_EQ(ComputeCrossCost(g, baseline), 600.0);
}

TEST(CrossCostTest, FullMergeCostsNothing) {
  CallGraph g = MovieReviewLike();
  const MergeSolution full = FullMergeSolution(g);
  EXPECT_DOUBLE_EQ(ComputeCrossCost(g, full), 0.0);
}

TEST(CrossCostTest, CloningAvoidsCuts) {
  CallGraph g = MovieReviewLike();
  // Two groups: {root, uid, rating, cau} and {text, cau}: text is a root,
  // cau cloned into both. Cut edges: root->text only (weight 100).
  MergeSolution solution;
  solution.groups.push_back(MergeGroup{0, {0, 1, 2, 4}});
  solution.groups.push_back(MergeGroup{3, {3, 4}});
  EXPECT_DOUBLE_EQ(ComputeCrossCost(g, solution), 100.0);
}

TEST(CheckSolutionTest, AcceptsValidTwoGroupSolution) {
  CallGraph g = MovieReviewLike();
  MergeProblem problem{&g, 2.0, 256.0};
  MergeSolution solution;
  solution.groups.push_back(MergeGroup{0, {0, 1, 2, 4}});
  solution.groups.push_back(MergeGroup{3, {3, 4}});
  EXPECT_TRUE(CheckSolution(problem, solution).ok());
}

TEST(CheckSolutionTest, RejectsMissingCoverage) {
  CallGraph g = MovieReviewLike();
  MergeProblem problem{&g, 2.0, 256.0};
  MergeSolution solution;
  solution.groups.push_back(MergeGroup{0, {0, 1, 2}});  // text & cau missing.
  EXPECT_FALSE(CheckSolution(problem, solution).ok());
}

TEST(CheckSolutionTest, RejectsDuplicateRoots) {
  CallGraph g = MovieReviewLike();
  MergeProblem problem{&g, 2.0, 256.0};
  MergeSolution solution;
  solution.groups.push_back(MergeGroup{0, {0, 1, 2, 3, 4}});
  solution.groups.push_back(MergeGroup{0, {0, 1}});
  EXPECT_FALSE(CheckSolution(problem, solution).ok());
}

TEST(CheckSolutionTest, RejectsDisconnectedGroup) {
  CallGraph g = MovieReviewLike();
  MergeProblem problem{&g, 2.0, 256.0};
  MergeSolution solution;
  // cau (4) not reachable from root 0 inside {0, 4}: requires an uploader.
  solution.groups.push_back(MergeGroup{0, {0, 4}});
  solution.groups.push_back(MergeGroup{1, {1, 4}});
  solution.groups.push_back(MergeGroup{2, {2, 4}});
  solution.groups.push_back(MergeGroup{3, {3, 4}});
  EXPECT_FALSE(CheckSolution(problem, solution).ok());
}

TEST(CheckSolutionTest, RejectsResourceViolation) {
  CallGraph g = MovieReviewLike();
  MergeProblem problem{&g, 0.5, 256.0};  // Full merge needs 0.95 vCPUs.
  const MergeSolution full = FullMergeSolution(g);
  EXPECT_EQ(CheckSolution(problem, full).code(), StatusCode::kResourceExhausted);
}

TEST(CheckSolutionTest, RejectsCutEdgeToNonRoot) {
  CallGraph g = MovieReviewLike();
  MergeProblem problem{&g, 2.0, 256.0};
  MergeSolution solution;
  // Cut root->text but text is not a group root anywhere.
  solution.groups.push_back(MergeGroup{0, {0, 1, 2, 4}});
  solution.groups.push_back(MergeGroup{4, {4}});
  // text (3) uncovered too; make a group rooted elsewhere containing it is
  // impossible, so this should fail on coverage/cut rules.
  EXPECT_FALSE(CheckSolution(problem, solution).ok());
}

TEST(CheckSolutionTest, RequiresWorkflowRootGroup) {
  CallGraph g = MovieReviewLike();
  MergeProblem problem{&g, 2.0, 256.0};
  MergeSolution solution;
  solution.groups.push_back(MergeGroup{1, {1, 4}});
  EXPECT_FALSE(CheckSolution(problem, solution).ok());
}

TEST(SolutionToStringTest, ContainsGroupInfo) {
  CallGraph g = MovieReviewLike();
  const MergeSolution full = FullMergeSolution(g);
  const std::string s = SolutionToString(g, full);
  EXPECT_NE(s.find("compose-review"), std::string::npos);
  EXPECT_NE(s.find("cpu="), std::string::npos);
}

}  // namespace
}  // namespace quilt
