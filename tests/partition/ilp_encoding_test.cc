#include "src/partition/ilp_encoding.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

CallGraph Chain3(double mem_each) {
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, mem_each);
  const NodeId b = g.AddNode("B", 0.1, mem_each);
  const NodeId c = g.AddNode("C", 0.1, mem_each);
  EXPECT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  EXPECT_TRUE(g.AddEdgeWithAlpha(b, c, 20, 1, CallType::kSync).ok());
  return g;
}

TEST(IlpEncodingTest, SingleRootFullMergeWhenItFits) {
  CallGraph g = Chain3(10);
  MergeProblem problem{&g, 2.0, 100.0};
  Result<MergeSolution> solution = SolveForRoots(problem, {0});
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->num_groups(), 1);
  EXPECT_EQ(solution->groups[0].members.size(), 3u);
  EXPECT_DOUBLE_EQ(solution->cross_cost, 0.0);
  EXPECT_TRUE(CheckSolution(problem, *solution).ok());
}

TEST(IlpEncodingTest, SingleRootInfeasibleWhenTooBig) {
  CallGraph g = Chain3(60);  // Merge of 3 nodes needs 180 MB.
  MergeProblem problem{&g, 2.0, 100.0};
  const Result<MergeSolution> solution = SolveForRoots(problem, {0});
  EXPECT_FALSE(solution.ok());
}

TEST(IlpEncodingTest, TwoRootsSplitChainAtCheaperEdge) {
  CallGraph g = Chain3(60);  // Any two nodes fit (120 MB? no: limit 130).
  MergeProblem problem{&g, 2.0, 130.0};
  // Roots {A, B}: must cut A->B (weight 10), C joins B's group.
  Result<MergeSolution> solution = SolveForRoots(problem, {0, 1});
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_DOUBLE_EQ(solution->cross_cost, 10.0);
  EXPECT_TRUE(CheckSolution(problem, *solution).ok());

  // Roots {A, C}: must cut B->C (weight 20), B joins A's group.
  solution = SolveForRoots(problem, {0, 2});
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->cross_cost, 20.0);
}

TEST(IlpEncodingTest, CloningSharedCalleeBeatsCutting) {
  // Root fans out to two mid nodes which both call a shared leaf; memory
  // only allows 3-node groups. Cloning the leaf into both groups costs just
  // the one cut into the second mid node.
  CallGraph g;
  const NodeId root = g.AddNode("root", 0.1, 10);
  const NodeId m1 = g.AddNode("m1", 0.1, 10);
  const NodeId m2 = g.AddNode("m2", 0.1, 10);
  const NodeId leaf = g.AddNode("leaf", 0.1, 10);
  ASSERT_TRUE(g.AddEdgeWithAlpha(root, m1, 5, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(root, m2, 5, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(m1, leaf, 50, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(m2, leaf, 50, 1, CallType::kSync).ok());
  MergeProblem problem{&g, 2.0, 35.0};  // Fits root + m1 + leaf (mem 30, leaf once).

  Result<MergeSolution> solution = SolveForRoots(problem, {root, m2});
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  // Group(root) = {root, m1, leaf}; group(m2) = {m2, leaf}. Only cut:
  // root->m2 (weight 5). The heavy m->leaf edges stay internal via cloning.
  EXPECT_DOUBLE_EQ(solution->cross_cost, 5.0);
  EXPECT_TRUE(CheckSolution(problem, *solution).ok());
  EXPECT_TRUE(solution->groups[0].Contains(leaf));
  EXPECT_TRUE(solution->groups[1].Contains(leaf));
}

TEST(IlpEncodingTest, CpuConstraintForcesSplit) {
  // High-alpha edge makes the callee CPU-expensive inside a merge.
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.5, 10);
  const NodeId b = g.AddNode("B", 0.5, 10);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 800, 8, CallType::kSync).ok());
  MergeProblem problem{&g, 2.0, 1000.0};  // Merge needs 0.5 + 8*0.5 = 4.5 vCPU.
  EXPECT_FALSE(SolveForRoots(problem, {a}).ok());
  // With b as its own root the baseline split works.
  Result<MergeSolution> split = SolveForRoots(problem, {a, b});
  ASSERT_TRUE(split.ok());
  EXPECT_DOUBLE_EQ(split->cross_cost, 800.0);
}

TEST(IlpEncodingTest, AsyncMemoryMultiplierForcesSplit) {
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 10);
  const NodeId b = g.AddNode("B", 0.1, 40);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 400, 4, CallType::kAsync).ok());
  // Merge memory: 10 + 40 + 3*40 = 170 > 150.
  MergeProblem problem{&g, 8.0, 150.0};
  EXPECT_FALSE(SolveForRoots(problem, {a}).ok());
  // Sync version of the same edge needs only 50 MB.
  CallGraph g2;
  const NodeId a2 = g2.AddNode("A", 0.1, 10);
  const NodeId b2 = g2.AddNode("B", 0.1, 40);
  ASSERT_TRUE(g2.AddEdgeWithAlpha(a2, b2, 400, 4, CallType::kSync).ok());
  MergeProblem problem2{&g2, 8.0, 150.0};
  EXPECT_TRUE(SolveForRoots(problem2, {a2}).ok());
}

TEST(IlpEncodingTest, DecodeProducesCheckableSolutions) {
  CallGraph g = Chain3(30);
  MergeProblem problem{&g, 2.0, 70.0};  // Only 2 nodes fit together.
  for (const std::vector<NodeId>& roots :
       {std::vector<NodeId>{0, 1}, std::vector<NodeId>{0, 2}, std::vector<NodeId>{0, 1, 2}}) {
    Result<MergeSolution> solution = SolveForRoots(problem, roots);
    ASSERT_TRUE(solution.ok()) << "roots size " << roots.size();
    EXPECT_TRUE(CheckSolution(problem, *solution).ok())
        << CheckSolution(problem, *solution).ToString();
    // Objective must equal the recomputed cross cost.
    EXPECT_DOUBLE_EQ(solution->cross_cost, ComputeCrossCost(g, *solution));
  }
}

}  // namespace
}  // namespace quilt
