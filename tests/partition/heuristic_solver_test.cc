#include "src/partition/heuristic_solver.h"

#include <gtest/gtest.h>

#include "src/graph/random_dag.h"
#include "src/partition/metrics.h"
#include "src/partition/optimal_solver.h"

namespace quilt {
namespace {

MergeProblem ProblemFor(const CallGraph& g, double cpu, double mem) {
  return MergeProblem{&g, cpu, mem};
}

TEST(ScorersTest, DownstreamImpactPrefersGatewayNodes) {
  // root -> gateway -> {heavy1, heavy2}; root -> light.
  CallGraph g;
  const NodeId root = g.AddNode("root", 0.1, 10);
  const NodeId gateway = g.AddNode("gateway", 0.1, 10);
  const NodeId heavy1 = g.AddNode("heavy1", 0.5, 90);
  const NodeId heavy2 = g.AddNode("heavy2", 0.5, 90);
  const NodeId light = g.AddNode("light", 0.05, 5);
  ASSERT_TRUE(g.AddEdgeWithAlpha(root, gateway, 10, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(gateway, heavy1, 10, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(gateway, heavy2, 10, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(root, light, 10, 1, CallType::kSync).ok());
  MergeProblem problem = ProblemFor(g, 2.0, 128.0);

  DownstreamImpactScorer dih;
  const std::vector<double> scores = dih.Score(problem);
  // The gateway guards the resource-heavy subtree: highest score.
  EXPECT_GT(scores[gateway], scores[light]);
  EXPECT_GT(scores[gateway], scores[heavy1]);
}

TEST(ScorersTest, WeightedDegreeScorers) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 10);
  const NodeId b = g.AddNode("b", 0.1, 10);
  const NodeId c = g.AddNode("c", 0.1, 10);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 7, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, c, 3, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(b, c, 4, 1, CallType::kSync).ok());
  MergeProblem problem = ProblemFor(g, 2.0, 128.0);
  EXPECT_EQ(WeightedInDegreeScorer().Score(problem), (std::vector<double>{0, 7, 7}));
  EXPECT_EQ(WeightedOutDegreeScorer().Score(problem), (std::vector<double>{10, 4, 0}));
  EXPECT_EQ(BetweennessScorer().name(), "betweenness");
}

TEST(HeuristicSolverTest, FindsFullMergeOnEasyGraph) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 10);
  const NodeId b = g.AddNode("b", 0.1, 10);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  MergeProblem problem = ProblemFor(g, 2.0, 128.0);
  DownstreamImpactScorer dih;
  HeuristicSolver solver(dih);
  Result<MergeSolution> solution = solver.Solve(problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->cross_cost, 0.0);
}

TEST(HeuristicSolverTest, DihMatchesOptimalOnSmallRandomGraphs) {
  Rng rng(2024);
  DownstreamImpactScorer dih;
  int optimal_matches = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    RandomDagOptions options;
    options.num_nodes = 8;
    CallGraph g = GenerateRandomRdag(options, rng);
    double total_mem = 0.0;
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      total_mem += g.node(id).memory;
    }
    // Memory for roughly half the graph; generous CPU.
    MergeProblem problem = ProblemFor(g, 50.0, total_mem * 0.55);

    OptimalSolver optimal;
    Result<MergeSolution> opt = optimal.Solve(problem);
    ASSERT_TRUE(opt.ok()) << "trial " << trial;

    HeuristicSolver heuristic(dih);
    SolverOptions h_options;
    h_options.pool_size = 5;
    Result<MergeSolution> heur = heuristic.Solve(problem, h_options);
    ASSERT_TRUE(heur.ok()) << "trial " << trial;
    EXPECT_TRUE(CheckSolution(problem, *heur).ok());

    // The heuristic can never beat the optimum.
    EXPECT_GE(heur->cross_cost, opt->cross_cost - 1e-9);
    const double gap = OptimalityGap(heur->cross_cost, opt->cross_cost, g.TotalEdgeWeight());
    EXPECT_GE(gap, -1e-9);
    EXPECT_LE(gap, 1.0 + 1e-9);
    if (gap <= 1e-9) {
      ++optimal_matches;
    }
  }
  // DIH should be optimal most of the time (paper: gap 0.0394 at 25 nodes).
  EXPECT_GE(optimal_matches, trials / 2);
}

TEST(HeuristicSolverTest, StatsArePopulated) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 60);
  const NodeId b = g.AddNode("b", 0.1, 60);
  const NodeId c = g.AddNode("c", 0.1, 60);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(b, c, 20, 1, CallType::kSync).ok());
  MergeProblem problem = ProblemFor(g, 2.0, 130.0);
  DownstreamImpactScorer dih;
  HeuristicSolver solver(dih);
  SolverStats stats;
  Result<MergeSolution> solution = solver.Solve(problem, {}, &stats);
  ASSERT_TRUE(solution.ok());
  EXPECT_GT(stats.candidate_sets_tried, 0);
  EXPECT_GT(stats.feasible_sets, 0);
  EXPECT_DOUBLE_EQ(solution->cross_cost, 10.0);  // Cut the cheap edge.
}

TEST(MetricsTest, OptimalityGapDefinition) {
  EXPECT_DOUBLE_EQ(OptimalityGap(10, 10, 100), 0.0);   // Matched optimum.
  EXPECT_DOUBLE_EQ(OptimalityGap(100, 10, 100), 1.0);  // No better than baseline.
  EXPECT_DOUBLE_EQ(OptimalityGap(55, 10, 100), 0.5);
  EXPECT_DOUBLE_EQ(OptimalityGap(5, 5, 5), 0.0);  // Degenerate denominator.
}

}  // namespace
}  // namespace quilt
