#include "src/partition/grasp_solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/graph/random_dag.h"
#include "src/partition/scorers.h"

namespace quilt {
namespace {

// Canonical form of a solution: groups as (root, sorted members), sorted by
// root. Two solutions with equal canonical forms picked the same roots and
// the same membership, regardless of construction order.
std::vector<std::pair<NodeId, std::vector<NodeId>>> CanonicalGroups(
    const MergeSolution& solution) {
  std::vector<std::pair<NodeId, std::vector<NodeId>>> groups;
  for (const MergeGroup& group : solution.groups) {
    std::vector<NodeId> members = group.members;
    std::sort(members.begin(), members.end());
    groups.emplace_back(group.root, std::move(members));
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

TEST(GraspSolverTest, SolvesMediumRandomGraph) {
  Rng graph_rng(11);
  RandomDagOptions options;
  options.num_nodes = 40;
  CallGraph g = GenerateRandomRdag(options, graph_rng);
  double total_mem = 0.0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    total_mem += g.node(id).memory;
  }
  MergeProblem problem{&g, 100.0, total_mem * 0.3};

  DownstreamImpactScorer dih;
  GraspSolver solver(dih);
  SolverOptions grasp_options = SolverOptions::GraspDefaults();
  grasp_options.seed = 99;
  SolverStats stats;
  Result<MergeSolution> solution = solver.Solve(problem, grasp_options, &stats);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(CheckSolution(problem, *solution).ok())
      << CheckSolution(problem, *solution).ToString();
  EXPECT_LT(solution->cross_cost, g.TotalEdgeWeight());
  EXPECT_GT(stats.stage1_attempts, 0);
  EXPECT_GT(stats.ilp_solves, 0);
}

TEST(GraspSolverTest, RefinementNeverWorsensCost) {
  Rng graph_rng(21);
  RandomDagOptions options;
  options.num_nodes = 25;
  CallGraph g = GenerateRandomRdag(options, graph_rng);
  double total_mem = 0.0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    total_mem += g.node(id).memory;
  }
  MergeProblem problem{&g, 100.0, total_mem * 0.4};

  DownstreamImpactScorer dih;
  GraspSolver solver(dih);

  // Run once with refinement disabled and once with it on: refinement can
  // only improve (or match) the stage-1 cost because removals require strict
  // improvement.
  SolverOptions no_refine = SolverOptions::GraspDefaults();
  no_refine.seed = 5;
  no_refine.max_refinement_rounds = 1;  // One pass, may find nothing.
  Result<MergeSolution> coarse = solver.Solve(problem, no_refine);
  ASSERT_TRUE(coarse.ok());

  SolverOptions full = SolverOptions::GraspDefaults();
  full.seed = 5;
  Result<MergeSolution> refined = solver.Solve(problem, full);
  ASSERT_TRUE(refined.ok());
  EXPECT_LE(refined->cross_cost, coarse->cross_cost + 1e-9);
}

TEST(GraspSolverTest, TightConstraintsGrowThePool) {
  // Per-node memory 30..60; cap groups to ~2 nodes so stage 1 needs many
  // roots before feasibility.
  Rng graph_rng(31);
  RandomDagOptions options;
  options.num_nodes = 15;
  options.memory_min = 30;
  options.memory_max = 60;
  CallGraph g = GenerateRandomRdag(options, graph_rng);
  MergeProblem problem{&g, 100.0, 125.0};

  DownstreamImpactScorer dih;
  GraspSolver solver(dih);
  SolverOptions grasp_options = SolverOptions::GraspDefaults();
  grasp_options.seed = 1;
  grasp_options.initial_pool_size = 1;
  SolverStats stats;
  Result<MergeSolution> solution = solver.Solve(problem, grasp_options, &stats);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(CheckSolution(problem, *solution).ok());
  EXPECT_GT(stats.final_pool_size, 1);
}

TEST(GraspSolverTest, DeterministicGivenSeed) {
  Rng graph_rng(41);
  RandomDagOptions options;
  options.num_nodes = 20;
  CallGraph g = GenerateRandomRdag(options, graph_rng);
  double total_mem = 0.0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    total_mem += g.node(id).memory;
  }
  MergeProblem problem{&g, 100.0, total_mem * 0.4};
  DownstreamImpactScorer dih;
  GraspSolver solver(dih);
  SolverOptions grasp_options = SolverOptions::GraspDefaults();
  grasp_options.seed = 123;
  Result<MergeSolution> a = solver.Solve(problem, grasp_options);
  Result<MergeSolution> b = solver.Solve(problem, grasp_options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->cross_cost, b->cross_cost);
  EXPECT_EQ(a->num_groups(), b->num_groups());
  // Not just equal cost: the same seed picks the identical group roots and
  // the identical member sets.
  EXPECT_EQ(CanonicalGroups(*a), CanonicalGroups(*b));
}

TEST(GraspSolverTest, DifferentSeedStillProducesValidSolution) {
  Rng graph_rng(41);
  RandomDagOptions options;
  options.num_nodes = 20;
  CallGraph g = GenerateRandomRdag(options, graph_rng);
  double total_mem = 0.0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    total_mem += g.node(id).memory;
  }
  MergeProblem problem{&g, 100.0, total_mem * 0.4};
  DownstreamImpactScorer dih;
  GraspSolver solver(dih);

  SolverOptions base_options = SolverOptions::GraspDefaults();
  base_options.seed = 123;
  Result<MergeSolution> base = solver.Solve(problem, base_options);
  ASSERT_TRUE(base.ok());

  // Any other seed must still satisfy every solution invariant (coverage,
  // unique roots, rooted connectivity, resource limits), whatever roots the
  // randomized construction happens to pick.
  for (uint64_t seed : {7u, 777u, 31337u}) {
    SolverOptions other_options = SolverOptions::GraspDefaults();
    other_options.seed = seed;
    Result<MergeSolution> other = solver.Solve(problem, other_options);
    ASSERT_TRUE(other.ok()) << "seed " << seed << ": " << other.status().ToString();
    EXPECT_TRUE(CheckSolution(problem, *other).ok())
        << "seed " << seed << ": " << CheckSolution(problem, *other).ToString();
    EXPECT_LT(other->cross_cost, g.TotalEdgeWeight());
  }
}

}  // namespace
}  // namespace quilt
