#include "src/partition/combinations.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace quilt {
namespace {

TEST(CombinationsTest, EnumeratesAll) {
  std::set<std::vector<int>> seen;
  ForEachCombination(5, 3, [&](const std::vector<int>& combo) {
    seen.insert(combo);
    return true;
  });
  EXPECT_EQ(seen.size(), 10u);  // C(5,3).
  EXPECT_TRUE(seen.count({0, 1, 2}));
  EXPECT_TRUE(seen.count({2, 3, 4}));
}

TEST(CombinationsTest, ZeroChoose) {
  int calls = 0;
  ForEachCombination(4, 0, [&](const std::vector<int>& combo) {
    EXPECT_TRUE(combo.empty());
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 1);  // The empty combination.
}

TEST(CombinationsTest, InvalidKSkipsEnumeration) {
  int calls = 0;
  EXPECT_TRUE(ForEachCombination(3, 5, [&](const std::vector<int>&) {
    ++calls;
    return true;
  }));
  EXPECT_EQ(calls, 0);
}

TEST(CombinationsTest, EarlyAbort) {
  int calls = 0;
  const bool completed = ForEachCombination(6, 2, [&](const std::vector<int>&) {
    return ++calls < 4;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(calls, 4);
}

TEST(CombinationsTest, LexicographicOrder) {
  std::vector<std::vector<int>> order;
  ForEachCombination(4, 2, [&](const std::vector<int>& combo) {
    order.push_back(combo);
    return true;
  });
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order.front(), (std::vector<int>{0, 1}));
  EXPECT_EQ(order.back(), (std::vector<int>{2, 3}));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(BinomialCoefficient(5, 0), 1);
  EXPECT_EQ(BinomialCoefficient(5, 5), 1);
  EXPECT_EQ(BinomialCoefficient(5, 2), 10);
  EXPECT_EQ(BinomialCoefficient(10, 5), 252);
  EXPECT_EQ(BinomialCoefficient(3, 7), 0);
  EXPECT_EQ(BinomialCoefficient(7, -1), 0);
}

TEST(BinomialTest, AppendixAExample) {
  // C(99, 49) >= 10^28: saturates instead of overflowing.
  EXPECT_EQ(BinomialCoefficient(99, 49), std::numeric_limits<int64_t>::max());
}

TEST(BinomialTest, CountMatchesEnumeration) {
  for (int n = 1; n <= 8; ++n) {
    for (int k = 0; k <= n; ++k) {
      int64_t count = 0;
      ForEachCombination(n, k, [&](const std::vector<int>&) {
        ++count;
        return true;
      });
      EXPECT_EQ(count, BinomialCoefficient(n, k)) << n << " choose " << k;
    }
  }
}

}  // namespace
}  // namespace quilt
