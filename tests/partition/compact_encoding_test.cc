#include <gtest/gtest.h>

#include "src/graph/random_dag.h"
#include "src/partition/ilp_encoding.h"

namespace quilt {
namespace {

MergeProblem ProblemFor(const CallGraph& graph, double mem_fraction, double* limit_out) {
  double total_mem = 0.0;
  double max_mem = 0.0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    total_mem += graph.node(id).memory;
    max_mem = std::max(max_mem, graph.node(id).memory);
  }
  *limit_out = std::max(total_mem * mem_fraction, max_mem * 2.0);
  return MergeProblem{&graph, 1e9, *limit_out};
}

// The compact root-absorption encoding must (a) only return solutions that
// satisfy the true Appendix-B constraints, and (b) agree with the full
// encoding whenever its conservative resource accounting is not binding.
class CompactEncodingTest : public ::testing::TestWithParam<int> {};

TEST_P(CompactEncodingTest, SoundAndNearExactOnRandomGraphs) {
  Rng rng(5000 + GetParam());
  RandomDagOptions options;
  options.num_nodes = static_cast<int>(rng.UniformInt(5, 14));
  const CallGraph graph = GenerateRandomRdag(options, rng);
  double limit = 0.0;
  const MergeProblem problem = ProblemFor(graph, 0.6, &limit);

  // Random candidate root set including the workflow root.
  std::vector<NodeId> roots = {graph.root()};
  for (NodeId id = 1; id < graph.num_nodes(); ++id) {
    if (rng.Bernoulli(0.35)) {
      roots.push_back(id);
    }
  }

  const Result<MergeSolution> full = SolveForRoots(problem, roots);
  const Result<MergeSolution> compact = SolveForRootsCompact(problem, roots);

  if (compact.ok()) {
    // Soundness: the decoded members satisfy the *true* constraints.
    EXPECT_TRUE(CheckSolution(problem, *compact).ok())
        << CheckSolution(problem, *compact).ToString();
    EXPECT_DOUBLE_EQ(compact->cross_cost, ComputeCrossCost(graph, *compact));
    // The full encoding can only do as well or better.
    ASSERT_TRUE(full.ok());
    EXPECT_LE(full->cross_cost, compact->cross_cost + 1e-9);
  }
  if (!full.ok()) {
    // If even the exact encoding is infeasible, the conservative one is too.
    EXPECT_FALSE(compact.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CompactEncodingTest, ::testing::Range(0, 25));

TEST(CompactEncodingTest, MatchesFullOnChain) {
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 60);
  const NodeId b = g.AddNode("B", 0.1, 60);
  const NodeId c = g.AddNode("C", 0.1, 60);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(b, c, 99, 1, CallType::kSync).ok());
  MergeProblem problem{&g, 2.0, 130.0};
  // No overlaps and no multi-caller roots: the encodings agree exactly.
  for (const std::vector<NodeId>& roots :
       {std::vector<NodeId>{a, b}, std::vector<NodeId>{a, c}, std::vector<NodeId>{a, b, c}}) {
    Result<MergeSolution> full = SolveForRoots(problem, roots);
    Result<MergeSolution> compact = SolveForRootsCompact(problem, roots);
    ASSERT_EQ(full.ok(), compact.ok());
    if (full.ok()) {
      EXPECT_DOUBLE_EQ(full->cross_cost, compact->cross_cost);
    }
  }
}

TEST(CompactEncodingTest, LargeGraphDispatchesAutomatically) {
  Rng rng(99);
  RandomDagOptions options;
  options.num_nodes = kCompactEncodingThreshold + 10;
  const CallGraph graph = GenerateRandomRdag(options, rng);
  double limit = 0.0;
  const MergeProblem problem = ProblemFor(graph, 0.5, &limit);
  // Roots: the workflow root plus a spread of candidates.
  std::vector<NodeId> roots = {graph.root()};
  for (NodeId id = 5; id < graph.num_nodes(); id += 7) {
    roots.push_back(id);
  }
  const Result<MergeSolution> solution = SolveForRoots(problem, roots);
  if (solution.ok()) {
    EXPECT_TRUE(CheckSolution(problem, *solution).ok());
  }
}

}  // namespace
}  // namespace quilt
