#include "src/partition/decision_engine.h"

#include <gtest/gtest.h>

#include "src/graph/random_dag.h"

namespace quilt {
namespace {

CallGraph GraphOfSize(int n, uint64_t seed = 11) {
  Rng rng(seed);
  RandomDagOptions options;
  options.num_nodes = n;
  return GenerateRandomRdag(options, rng);
}

MergeProblem ProblemFor(const CallGraph& g, double mem_fraction = 0.4) {
  double total_mem = 0.0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    total_mem += g.node(id).memory;
  }
  return MergeProblem{&g, 100.0, total_mem * mem_fraction};
}

TEST(DecisionEngineTest, AutoPolicyPicksSolverBySize) {
  DecisionEngine engine;
  EXPECT_EQ(engine.Resolve(5), SolverChoice::kOptimal);
  EXPECT_EQ(engine.Resolve(11), SolverChoice::kOptimal);
  EXPECT_EQ(engine.Resolve(12), SolverChoice::kHeuristic);
  EXPECT_EQ(engine.Resolve(25), SolverChoice::kHeuristic);
  EXPECT_EQ(engine.Resolve(26), SolverChoice::kGrasp);
  EXPECT_EQ(engine.Resolve(400), SolverChoice::kGrasp);
}

TEST(DecisionEngineTest, RecordsNameTheSolverThatRan) {
  struct Case {
    int nodes;
    const char* solver;
  };
  for (const Case& c : {Case{8, "optimal"}, Case{18, "dih-sweep"}, Case{40, "grasp"}}) {
    DecisionEngine engine;
    CallGraph g = GraphOfSize(c.nodes);
    MergeProblem problem = ProblemFor(g);
    DecisionRecord record;
    Result<MergeSolution> solution = engine.Decide(problem, &record);
    ASSERT_TRUE(solution.ok()) << c.nodes << " nodes: " << solution.status().ToString();
    EXPECT_EQ(record.solver, c.solver) << c.nodes << " nodes";
    EXPECT_TRUE(record.feasible);
    EXPECT_EQ(record.graph_nodes, c.nodes);
    EXPECT_DOUBLE_EQ(record.final_cost, solution->cross_cost);
    EXPECT_GT(record.ilp_solves, 0);
  }
}

TEST(DecisionEngineTest, ExplicitChoiceOverridesSize) {
  DecisionEngineOptions options;
  options.solver = SolverChoice::kGrasp;
  DecisionEngine engine(options);
  CallGraph g = GraphOfSize(8);  // Would resolve to kOptimal under kAuto.
  MergeProblem problem = ProblemFor(g, 0.6);
  DecisionRecord record;
  Result<MergeSolution> solution = engine.Decide(problem, &record);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(record.solver, "grasp");
  EXPECT_EQ(record.grasp_starts, options.grasp_starts);
}

TEST(DecisionEngineTest, MultiStartGraspIsBitIdenticalAcrossThreadCounts) {
  // The tentpole determinism contract: same seed => byte-identical grouping,
  // whether the starts run inline or on 2 or 8 threads, with the shared ILP
  // cache on, and stable across repetitions.
  CallGraph g = GraphOfSize(40, 21);
  MergeProblem problem = ProblemFor(g);

  std::string reference_signature;
  double reference_cost = 0.0;
  for (int threads : {1, 2, 8}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      DecisionEngineOptions options;
      options.solver = SolverChoice::kGrasp;
      options.grasp_starts = 4;
      options.grasp_threads = threads;
      options.seed = 99;
      DecisionEngine engine(options);
      DecisionRecord record;
      Result<MergeSolution> solution = engine.Decide(problem, &record);
      ASSERT_TRUE(solution.ok())
          << threads << " threads: " << solution.status().ToString();
      const std::string signature = CanonicalSolutionSignature(*solution);
      if (reference_signature.empty()) {
        reference_signature = signature;
        reference_cost = solution->cross_cost;
        continue;
      }
      EXPECT_EQ(signature, reference_signature) << threads << " threads, run " << repeat;
      EXPECT_DOUBLE_EQ(solution->cross_cost, reference_cost);
    }
  }
}

TEST(DecisionEngineTest, DifferentSeedsMayDifferButStayValid) {
  CallGraph g = GraphOfSize(40, 21);
  MergeProblem problem = ProblemFor(g);
  for (uint64_t seed : {1u, 2u, 3u}) {
    DecisionEngineOptions options;
    options.solver = SolverChoice::kGrasp;
    options.seed = seed;
    DecisionEngine engine(options);
    DecisionRecord record;
    Result<MergeSolution> solution = engine.Decide(problem, &record);
    ASSERT_TRUE(solution.ok()) << "seed " << seed;
    EXPECT_TRUE(CheckSolution(problem, *solution).ok()) << "seed " << seed;
    EXPECT_EQ(record.seed, seed);
  }
}

TEST(DecisionEngineTest, RecurringDecisionsHalveIlpSolvesWithCache) {
  // The acceptance scenario: a >=200-node decision plus its re-decision (the
  // merge monitor re-runs Decide continuously). With the cache the second
  // pass answers every Phase-2 ILP from memory, so the fresh-solve total
  // across both passes is >=2x smaller than with the cache off.
  CallGraph g = GraphOfSize(200, 5);
  MergeProblem problem = ProblemFor(g, 0.3);

  auto fresh_solves_for_two_rounds = [&](bool enable_cache) {
    DecisionEngineOptions options;
    options.enable_cache = enable_cache;
    options.seed = 7;
    options.grasp_starts = 2;  // Keep the 200-node test quick.
    DecisionEngine engine(options);
    int64_t fresh = 0;
    for (int round = 0; round < 2; ++round) {
      DecisionRecord record;
      Result<MergeSolution> solution = engine.Decide(problem, &record);
      EXPECT_TRUE(solution.ok()) << solution.status().ToString();
      EXPECT_EQ(record.solver, "grasp");
      fresh += record.ilp_solves - record.ilp_cache_hits;
    }
    return fresh;
  };

  const int64_t with_cache = fresh_solves_for_two_rounds(true);
  const int64_t without_cache = fresh_solves_for_two_rounds(false);
  EXPECT_GT(with_cache, 0);
  EXPECT_GE(without_cache, 2 * with_cache)
      << "cache on: " << with_cache << " fresh solves; off: " << without_cache;
}

TEST(DecisionEngineTest, CacheDoesNotChangeTheAnswer) {
  CallGraph g = GraphOfSize(40, 33);
  MergeProblem problem = ProblemFor(g);
  std::string signatures[2];
  for (int i = 0; i < 2; ++i) {
    DecisionEngineOptions options;
    options.solver = SolverChoice::kGrasp;
    options.enable_cache = i == 0;
    options.seed = 4;
    DecisionEngine engine(options);
    Result<MergeSolution> solution = engine.Decide(problem);
    ASSERT_TRUE(solution.ok());
    signatures[i] = CanonicalSolutionSignature(*solution);
  }
  EXPECT_EQ(signatures[0], signatures[1]);
}

TEST(DecisionEngineTest, ExpiredDeadlineIsReportedNotHung) {
  // An already-exhausted budget must fail (or return an incumbent) promptly
  // and flag the record; it must never hang in a sweep.
  DecisionEngineOptions options;
  options.deadline_ms = 1e-6;
  DecisionEngine engine(options);
  CallGraph g = GraphOfSize(40, 21);
  MergeProblem problem = ProblemFor(g);
  DecisionRecord record;
  Result<MergeSolution> solution = engine.Decide(problem, &record);
  if (solution.ok()) {
    EXPECT_TRUE(record.hit_deadline);
  } else {
    EXPECT_EQ(solution.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_FALSE(record.exhaustive);
}

}  // namespace
}  // namespace quilt
