#include "src/partition/ilp_solve_cache.h"

#include <gtest/gtest.h>

#include "src/graph/random_dag.h"
#include "src/partition/grasp_solver.h"
#include "src/partition/ilp_encoding.h"
#include "src/partition/merge_solver.h"

namespace quilt {
namespace {

TEST(IlpSolveCacheTest, KeyCanonicalizesRootOrder) {
  EXPECT_EQ(IlpSolveCache::Key(42, {3, 1, 2}, 0.05, 1000),
            IlpSolveCache::Key(42, {1, 2, 3}, 0.05, 1000));
  // Anything that shapes the result must separate keys.
  EXPECT_NE(IlpSolveCache::Key(42, {1, 2}, 0.05, 1000),
            IlpSolveCache::Key(42, {1, 3}, 0.05, 1000));
  EXPECT_NE(IlpSolveCache::Key(42, {1, 2}, 0.0, 1000),
            IlpSolveCache::Key(42, {1, 2}, 0.05, 1000));
  EXPECT_NE(IlpSolveCache::Key(41, {1, 2}, 0.05, 1000),
            IlpSolveCache::Key(42, {1, 2}, 0.05, 1000));
}

TEST(IlpSolveCacheTest, FingerprintSeparatesProblems) {
  Rng rng(3);
  RandomDagOptions options;
  options.num_nodes = 10;
  CallGraph g1 = GenerateRandomRdag(options, rng);
  CallGraph g2 = GenerateRandomRdag(options, rng);
  MergeProblem p1{&g1, 2.0, 128.0};
  MergeProblem p1_again{&g1, 2.0, 128.0};
  MergeProblem p2{&g2, 2.0, 128.0};
  MergeProblem p1_other_limits{&g1, 2.0, 256.0};
  EXPECT_EQ(FingerprintProblem(p1), FingerprintProblem(p1_again));
  EXPECT_NE(FingerprintProblem(p1), FingerprintProblem(p2));
  EXPECT_NE(FingerprintProblem(p1), FingerprintProblem(p1_other_limits));
}

TEST(IlpSolveCacheTest, CachedSolveMatchesFreshSolve) {
  // Every root set a DIH-style sweep would try: the memoized answer must be
  // byte-equal to the direct SolveForRoots answer (same cost, same grouping).
  Rng rng(17);
  RandomDagOptions options;
  options.num_nodes = 9;
  CallGraph g = GenerateRandomRdag(options, rng);
  double total_mem = 0.0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    total_mem += g.node(id).memory;
  }
  MergeProblem problem{&g, 100.0, total_mem * 0.5};
  const uint64_t fingerprint = FingerprintProblem(problem);
  const NodeId root = g.root();

  IlpSolveCache cache(256);
  IlpSolveOptions ilp_options;
  for (int pass = 0; pass < 2; ++pass) {  // Second pass: all answers cached.
    for (NodeId extra = 0; extra < g.num_nodes(); ++extra) {
      if (extra == root) {
        continue;
      }
      std::vector<NodeId> roots = {root, extra};
      SolverStats stats;
      Result<MergeSolution> cached =
          SolveForRootsCached(problem, fingerprint, roots, ilp_options, &cache, &stats);
      Result<MergeSolution> fresh = SolveForRoots(problem, roots, ilp_options);
      ASSERT_EQ(cached.ok(), fresh.ok()) << "extra root " << extra;
      if (!cached.ok()) {
        continue;
      }
      EXPECT_DOUBLE_EQ(cached->cross_cost, fresh->cross_cost);
      EXPECT_EQ(CanonicalSolutionSignature(*cached), CanonicalSolutionSignature(*fresh));
    }
  }
  const IlpSolveCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0);  // The whole second pass hits.
  EXPECT_GE(stats.hits, stats.insertions);
}

TEST(IlpSolveCacheTest, CutoffIsAppliedToTheMemoizedResult) {
  // A cached feasible solution above the caller's cutoff must come back as
  // infeasible-for-this-cutoff, exactly like a fresh cutoff-pruned solve.
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 60);
  const NodeId b = g.AddNode("B", 0.1, 60);
  const NodeId c = g.AddNode("C", 0.1, 60);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(b, c, 99, 1, CallType::kSync).ok());
  MergeProblem problem{&g, 2.0, 130.0};
  const uint64_t fingerprint = FingerprintProblem(problem);

  IlpSolveCache cache(16);
  SolverStats stats;
  IlpSolveOptions no_cutoff;
  std::vector<NodeId> roots = {a, b};  // Cuts A->B: cost 10.
  Result<MergeSolution> first =
      SolveForRootsCached(problem, fingerprint, roots, no_cutoff, &cache, &stats);
  ASSERT_TRUE(first.ok());
  EXPECT_DOUBLE_EQ(first->cross_cost, 10.0);

  IlpSolveOptions tight;
  tight.cutoff = 5.0;  // Strictly better than 5 required: 10 fails.
  Result<MergeSolution> filtered =
      SolveForRootsCached(problem, fingerprint, roots, tight, &cache, &stats);
  EXPECT_FALSE(filtered.ok());
  IlpSolveOptions loose;
  loose.cutoff = 50.0;
  Result<MergeSolution> passed =
      SolveForRootsCached(problem, fingerprint, roots, loose, &cache, &stats);
  ASSERT_TRUE(passed.ok());
  EXPECT_DOUBLE_EQ(passed->cross_cost, 10.0);
  // All three queries resolved to one underlying solve.
  EXPECT_EQ(stats.ilp_solves, 3);
  EXPECT_EQ(stats.ilp_cache_hits, 2);
}

TEST(IlpSolveCacheTest, EvictsLeastRecentlyUsedUnderCapacity) {
  IlpSolveCache cache(3);
  auto key = [](int i) { return IlpSolveCache::Key(7, {static_cast<NodeId>(i)}, 0.0, 0); };
  for (int i = 0; i < 5; ++i) {
    cache.Insert(key(i), IlpSolveCache::Entry{false, {}});
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 2);
  // Oldest two are gone, newest three remain.
  EXPECT_FALSE(cache.Lookup(key(0)).has_value());
  EXPECT_FALSE(cache.Lookup(key(1)).has_value());
  EXPECT_TRUE(cache.Lookup(key(2)).has_value());
  EXPECT_TRUE(cache.Lookup(key(4)).has_value());
  // Touch key(2), insert another: key(3) is now the LRU victim.
  EXPECT_TRUE(cache.Lookup(key(2)).has_value());
  cache.Insert(key(5), IlpSolveCache::Entry{false, {}});
  EXPECT_FALSE(cache.Lookup(key(3)).has_value());
  EXPECT_TRUE(cache.Lookup(key(2)).has_value());

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace quilt
