#include "src/partition/dot_export.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

CallGraph SmallGraph() {
  CallGraph g;
  const NodeId a = g.AddNode("root-fn", 0.1, 10);
  const NodeId b = g.AddNode("leaf-fn", 0.2, 20);
  EXPECT_TRUE(g.AddEdgeWithAlpha(a, b, 100, 3, CallType::kAsync).ok());
  return g;
}

TEST(DotExportTest, PlainGraph) {
  const std::string dot = ToDot(SmallGraph());
  EXPECT_NE(dot.find("digraph callgraph"), std::string::npos);
  EXPECT_NE(dot.find("root-fn"), std::string::npos);
  EXPECT_NE(dot.find("leaf-fn"), std::string::npos);
  EXPECT_NE(dot.find("a=3"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // Async edge.
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);    // Root highlight.
  EXPECT_EQ(dot.find("cluster"), std::string::npos);
}

TEST(DotExportTest, SolutionClusters) {
  CallGraph g;
  const NodeId a = g.AddNode("a", 0.1, 10);
  const NodeId b = g.AddNode("b", 0.1, 10);
  const NodeId c = g.AddNode("c", 0.1, 10);
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 5, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(b, c, 7, 1, CallType::kSync).ok());
  MergeSolution solution;
  solution.groups.push_back(MergeGroup{a, {a, b}});
  solution.groups.push_back(MergeGroup{c, {c}});
  const std::string dot = ToDot(g, solution);
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("remote"), std::string::npos);  // The cut b->c edge.
  // The internal edge a->b stays inside cluster 0.
  EXPECT_NE(dot.find("g0_n0 -> g0_n1"), std::string::npos);
}

TEST(DotExportTest, ClonedNodesAppearPerCluster) {
  CallGraph g;
  const NodeId root = g.AddNode("root", 0.1, 10);
  const NodeId mid = g.AddNode("mid", 0.1, 10);
  const NodeId shared = g.AddNode("shared", 0.1, 10);
  ASSERT_TRUE(g.AddEdgeWithAlpha(root, mid, 1, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(root, shared, 1, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdgeWithAlpha(mid, shared, 9, 1, CallType::kSync).ok());
  MergeSolution solution;
  solution.groups.push_back(MergeGroup{root, {root, shared}});
  solution.groups.push_back(MergeGroup{mid, {mid, shared}});
  const std::string dot = ToDot(g, solution);
  // "shared" rendered in both clusters.
  EXPECT_NE(dot.find("g0_n2"), std::string::npos);
  EXPECT_NE(dot.find("g1_n2"), std::string::npos);
}

}  // namespace
}  // namespace quilt
