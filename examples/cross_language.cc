// Cross-language merging (§5.3, Appendix D): five functions in five
// languages (Rust, C, Go, Swift, C++) fused into one process.
//
// Prints the merged module so the caller2c / c2callee shim chains and the
// renamed per-language symbols are visible, and demonstrates that the merged
// function serves requests with local calls across language boundaries.
#include <cstdio>

#include "src/apps/app.h"
#include "src/core/quilt_controller.h"
#include "src/quiltc/compiler.h"
#include "src/common/strings.h"
#include "src/workload/loadgen.h"

namespace {

quilt::WorkflowApp PolyglotWorkflow() {
  using namespace quilt;
  WorkflowApp app;
  app.name = "polyglot";
  app.root_handle = "gateway-rs";

  AppFunctionSpec root;
  root.handle = "gateway-rs";
  root.lang = Lang::kRust;
  root.steps = {ComputeStep{0.3},
                CallStep{{CallItem{"tokenize-c", 1, false}, CallItem{"rank-go", 1, false}},
                         /*parallel=*/true},
                CallStep{{CallItem{"render-swift", 1, false}}, false}};
  app.functions.push_back(root);

  AppFunctionSpec tokenize;
  tokenize.handle = "tokenize-c";
  tokenize.lang = Lang::kC;
  tokenize.steps = {ComputeStep{0.4}};
  app.functions.push_back(tokenize);

  AppFunctionSpec rank;
  rank.handle = "rank-go";
  rank.lang = Lang::kGo;
  rank.steps = {ComputeStep{0.6}, CallStep{{CallItem{"score-cpp", 1, false}}, false}};
  app.functions.push_back(rank);

  AppFunctionSpec score;
  score.handle = "score-cpp";
  score.lang = Lang::kCpp;
  score.steps = {ComputeStep{0.5}};
  app.functions.push_back(score);

  AppFunctionSpec render;
  render.handle = "render-swift";
  render.lang = Lang::kSwift;
  render.steps = {ComputeStep{0.4}, SleepStep{1.0}};
  app.functions.push_back(render);
  return app;
}

}  // namespace

int main() {
  using namespace quilt;

  const WorkflowApp app = PolyglotWorkflow();
  Result<CallGraph> graph = app.ReferenceGraph();
  if (!graph.ok()) {
    std::printf("graph error: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  std::printf("== merging %zu functions across 5 languages ==\n", app.functions.size());
  QuiltCompiler compiler;
  Result<MergedArtifact> artifact =
      compiler.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources());
  if (!artifact.ok()) {
    std::printf("merge failed: %s\n", artifact.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== merged module (note the shim chains and mangled symbols) ==\n%s\n",
              artifact->module.DebugString().c_str());
  int cross = 0;
  for (const LocalizedEdge& edge : artifact->localized_edges) {
    std::printf("localized %-12s -> %-13s %s\n", edge.caller_handle.c_str(),
                edge.callee_handle.c_str(),
                edge.cross_language ? "[cross-language via caller2c/c2callee]" : "");
    cross += edge.cross_language ? 1 : 0;
  }
  std::printf("%d of %zu localized edges cross a language boundary\n", cross,
              artifact->localized_edges.size());
  std::printf("merged binary: %s\n", FormatBytes(artifact->image.size_bytes).c_str());

  // Deploy and serve requests to show the merged polyglot process works.
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  QuiltController controller(&sim, &platform);
  if (Status s = controller.RegisterWorkflow(app); !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = controller.DeploySolutionDirect(app, FullMergeSolution(*graph)); !s.ok()) {
    std::printf("deploy failed: %s\n", s.ToString().c_str());
    return 1;
  }
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.warmup = Seconds(1);
  options.duration = Seconds(10);
  const LoadResult result = generator.Run(&sim, &platform, "gateway-rs", options);
  std::printf("\nserved %lld requests, median latency %s, 0 remote hops inside the workflow\n",
              static_cast<long long>(result.completed),
              FormatDuration(result.latency.Median()).c_str());
  return result.completed > 0 ? 0 : 1;
}
