// Large-graph merge decision with GRASP (Appendix C.4).
//
// Generates a 300-node random rDAG (far beyond what the exact solver can
// handle: 2^299 candidate root sets) and runs the two-stage GRASP procedure:
// randomized pool growth until feasibility, then greedy root pruning.
#include <chrono>
#include <cstdio>

#include "src/graph/random_dag.h"
#include "src/partition/grasp_solver.h"
#include "src/partition/scorers.h"

int main() {
  using namespace quilt;

  Rng graph_rng(2025);
  RandomDagOptions options;
  options.num_nodes = 300;
  const CallGraph graph = GenerateRandomRdag(options, graph_rng);

  double total_mem = 0.0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    total_mem += graph.node(id).memory;
  }
  MergeProblem problem{&graph, /*cpu_limit=*/40.0, /*memory_limit=*/total_mem * 0.12};
  std::printf("graph: %d nodes, %d edges; memory limit %.0f MB (12%% of total)\n",
              graph.num_nodes(), graph.num_edges(), problem.memory_limit);
  std::printf("baseline (no merging) remote calls per window: %.0f\n\n",
              graph.TotalEdgeWeight());

  DownstreamImpactScorer dih;
  GraspSolver solver(dih);
  SolverOptions grasp_options = SolverOptions::GraspDefaults();
  grasp_options.seed = 7;
  SolverStats stats;

  const auto start = std::chrono::steady_clock::now();
  Result<MergeSolution> solution = solver.Solve(problem, grasp_options, &stats);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  if (!solution.ok()) {
    std::printf("GRASP failed: %s\n", solution.status().ToString().c_str());
    return 1;
  }

  const Status valid = CheckSolution(problem, *solution);
  std::printf("GRASP: %d groups, cross-edge cost %.0f (%.1f%% of baseline) in %lld ms\n",
              solution->num_groups(), solution->cross_cost,
              100.0 * solution->cross_cost / graph.TotalEdgeWeight(),
              static_cast<long long>(elapsed.count()));
  std::printf("stage 1: %d attempts, final pool size %d; stage 2: %d roots pruned; "
              "%lld ILP solves total\n",
              stats.stage1_attempts, stats.final_pool_size, stats.refinement_removals,
              static_cast<long long>(stats.ilp_solves));
  std::printf("solution check: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
