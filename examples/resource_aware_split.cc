// Resource-aware merging in action (§4, §7.4.1): when merging everything
// would blow the container limits, Quilt's decision algorithm splits the
// workflow at the cheapest edges instead.
//
// Uses the modified nearby-cinema workflow: six CPU-heavy get-nearby-points
// workers behind two aggregators, under 1.6 vCPU / 320 MB containers.
#include <cstdio>

#include "src/apps/deathstarbench.h"
#include "src/partition/heuristic_solver.h"
#include "src/partition/ilp_encoding.h"
#include "src/partition/optimal_solver.h"
#include "src/partition/dot_export.h"
#include "src/partition/scorers.h"

int main() {
  using namespace quilt;

  const WorkflowApp app = ModifiedNearbyCinema();
  Result<CallGraph> graph = app.ReferenceGraph();
  if (!graph.ok()) {
    std::printf("graph error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("== %s ==\n%s\n", app.name.c_str(), graph->DebugString().c_str());

  MergeProblem problem{&*graph, /*cpu_limit=*/1.6, /*memory_limit=*/320.0};

  // Merging everything violates both constraints.
  const MergeSolution full = FullMergeSolution(*graph);
  const GroupResources full_res = ComputeGroupResources(*graph, full.groups[0]);
  std::printf("full merge would need %.2f vCPU (limit %.1f) and %.0f MB (limit %.0f): %s\n",
              full_res.cpu, problem.cpu_limit, full_res.memory, problem.memory_limit,
              CheckSolution(problem, full).ok() ? "feasible" : "INFEASIBLE");

  // The exact solver finds the resource-respecting optimum.
  OptimalSolver optimal;
  SolverStats stats;
  Result<MergeSolution> best = optimal.Solve(problem, {}, &stats);
  if (!best.ok()) {
    std::printf("optimal solve failed: %s\n", best.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== optimal grouping (%lld candidate root sets explored) ==\n%s\n",
              static_cast<long long>(stats.candidate_sets_tried),
              SolutionToString(*graph, *best).c_str());

  // The Downstream Impact heuristic finds the same answer much faster.
  DownstreamImpactScorer dih;
  const std::vector<double> scores = dih.Score(problem);
  std::printf("== downstream-impact scores (why the aggregators become roots) ==\n");
  for (NodeId id = 0; id < graph->num_nodes(); ++id) {
    std::printf("  %-18s %.3f\n", graph->node(id).name.c_str(), scores[id]);
  }
  HeuristicSolver heuristic(dih);
  SolverStats h_stats;
  Result<MergeSolution> approx = heuristic.Solve(problem, {}, &h_stats);
  if (!approx.ok()) {
    std::printf("heuristic solve failed: %s\n", approx.status().ToString().c_str());
    return 1;
  }
  std::printf("\nDIH solution: cost %.0f vs optimal %.0f (%lld vs %lld candidate sets)\n",
              approx->cross_cost, best->cross_cost,
              static_cast<long long>(h_stats.candidate_sets_tried),
              static_cast<long long>(stats.candidate_sets_tried));

  std::printf("\n== Graphviz rendering of the chosen grouping (pipe into `dot -Tsvg`) ==\n%s",
              ToDot(*graph, *best).c_str());
  return 0;
}
