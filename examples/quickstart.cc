// Quickstart: merge a tiny three-function workflow and watch invocation
// latency collapse.
//
// Builds a root -> enrich -> store pipeline, runs it unmerged on the
// simulated serverless platform, then asks Quilt to profile, decide, merge
// (at the IR level), and redeploy -- and measures the difference.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/apps/app.h"
#include "src/core/quilt_controller.h"
#include "src/workload/loadgen.h"

namespace {

quilt::WorkflowApp TinyPipeline() {
  using namespace quilt;
  WorkflowApp app;
  app.name = "tiny-pipeline";
  app.root_handle = "api-entry";

  AppFunctionSpec entry;
  entry.handle = "api-entry";
  entry.steps = {ComputeStep{0.3},
                 CallStep{{CallItem{"enrich", 1, false}}, /*parallel=*/false},
                 ComputeStep{0.2}};
  app.functions.push_back(entry);

  AppFunctionSpec enrich;
  enrich.handle = "enrich";
  enrich.steps = {ComputeStep{0.5}, SleepStep{2.0},
                  CallStep{{CallItem{"store", 1, false}}, false}};
  app.functions.push_back(enrich);

  AppFunctionSpec store;
  store.handle = "store";
  store.steps = {ComputeStep{0.3}, SleepStep{3.0}};
  app.functions.push_back(store);
  return app;
}

quilt::LoadResult Measure(quilt::Simulation& sim, quilt::Platform& platform,
                          const std::string& target) {
  quilt::ClosedLoopGenerator generator;
  quilt::ClosedLoopGenerator::Options options;
  options.connections = 1;
  options.warmup = quilt::Seconds(2);
  options.duration = quilt::Seconds(20);
  return generator.Run(&sim, &platform, target, options);
}

}  // namespace

int main() {
  using namespace quilt;
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  QuiltController controller(&sim, &platform);

  // 1. Developers upload their functions; each becomes its own container.
  const WorkflowApp app = TinyPipeline();
  Status status = controller.RegisterWorkflow(app);
  if (!status.ok()) {
    std::printf("register failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 2. Status quo: every call crosses the API gateway.
  const LoadResult before = Measure(sim, platform, "api-entry");
  std::printf("baseline : median %-10s p99 %-10s (%lld requests)\n",
              FormatDuration(before.latency.Median()).c_str(),
              FormatDuration(before.latency.P99()).c_str(),
              static_cast<long long>(before.completed));

  // 3. Quilt profiles in the background (the provider flips one token)...
  controller.StartProfiling();
  Measure(sim, platform, "api-entry");
  controller.StopProfiling();

  // ...decides what to merge under the resource constraints, runs the
  // compilation pipeline, and redeploys through the normal update path.
  Result<MergeSolution> solution = controller.OptimizeWorkflow("api-entry");
  if (!solution.ok()) {
    std::printf("optimize failed: %s\n", solution.status().ToString().c_str());
    return 1;
  }
  std::printf("quilt merged the workflow into %d group(s); cross-edge cost %.0f\n",
              solution->num_groups(), solution->cross_cost);

  // 4. Same workload, merged function.
  const LoadResult after = Measure(sim, platform, "api-entry");
  std::printf("quilt    : median %-10s p99 %-10s (%lld requests)\n",
              FormatDuration(after.latency.Median()).c_str(),
              FormatDuration(after.latency.P99()).c_str(),
              static_cast<long long>(after.completed));

  const double improvement =
      100.0 * (1.0 - static_cast<double>(after.latency.Median()) /
                         static_cast<double>(before.latency.Median()));
  std::printf("median workflow completion improved by %.1f%%\n", improvement);
  return 0;
}
