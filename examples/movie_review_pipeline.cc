// End-to-end walkthrough on a real workflow: DeathStarBench's Movie Review
// compose-review (15 functions, the Figure-3 application).
//
// Shows every stage of Quilt's pipeline with intermediate artifacts printed:
// transparent profiling (call-graph reconstruction from spans), the
// constraint-aware merge decision, the per-pass merge pipeline, deployment
// via the platform's normal function-update mechanism, and the before/after
// measurement -- plus a rollback at the end (§8).
#include <cstdio>

#include "src/apps/deathstarbench.h"
#include "src/core/quilt_controller.h"
#include "src/common/strings.h"
#include "src/workload/loadgen.h"

namespace {

quilt::LoadResult Measure(quilt::Simulation& sim, quilt::Platform& platform,
                          const std::string& target, int connections = 1) {
  quilt::ClosedLoopGenerator generator;
  quilt::ClosedLoopGenerator::Options options;
  options.connections = connections;
  options.warmup = quilt::Seconds(3);
  options.duration = quilt::Seconds(30);
  return generator.Run(&sim, &platform, target, options);
}

}  // namespace

int main() {
  using namespace quilt;
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  QuiltController controller(&sim, &platform);

  const WorkflowApp app = ComposeReview(/*async_fanout=*/true);
  std::printf("== registering '%s' (%zu functions) ==\n", app.name.c_str(),
              app.functions.size());
  if (Status s = controller.RegisterWorkflow(app); !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\n== baseline measurement ==\n");
  const LoadResult baseline = Measure(sim, platform, app.root_handle);
  std::printf("median %s  p99 %s  (%lld requests)\n",
              FormatDuration(baseline.latency.Median()).c_str(),
              FormatDuration(baseline.latency.P99()).c_str(),
              static_cast<long long>(baseline.completed));

  std::printf("\n== profiling window (ingress + otel + cadvisor) ==\n");
  controller.StartProfiling();
  Measure(sim, platform, app.root_handle);
  controller.StopProfiling();
  std::printf("spans collected: %lld\n",
              static_cast<long long>(controller.span_store()->size()));

  Result<CallGraph> graph = controller.BuildCallGraph(app.root_handle);
  if (!graph.ok()) {
    std::printf("call-graph construction failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== reconstructed call graph ==\n%s\n", graph->DebugString().c_str());

  std::printf("== merge decision (C=%.1f vCPU, M=%.0f MB per container) ==\n",
              controller.options().container_cpu_limit,
              controller.options().container_memory_limit_mb);
  Result<MergeSolution> solution = controller.Decide(*graph);
  if (!solution.ok()) {
    std::printf("decision failed: %s\n", solution.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", SolutionToString(*graph, *solution).c_str());

  std::printf("== merging (LLVM-style pipeline) ==\n");
  Result<std::vector<MergedArtifact>> artifacts =
      controller.Merge(*graph, *solution, app.root_handle);
  if (!artifacts.ok()) {
    std::printf("merge failed: %s\n", artifacts.status().ToString().c_str());
    return 1;
  }
  for (const MergedArtifact& artifact : *artifacts) {
    std::printf("artifact '%s': %zu functions, binary %s, pipeline time %s\n",
                artifact.handle.c_str(), artifact.member_handles.size(),
                FormatBytes(artifact.image.size_bytes).c_str(),
                FormatDuration(artifact.TotalPipelineTime()).c_str());
    for (const PassStats& pass : artifact.pass_stats) {
      if (pass.counter("calls_localized") > 0) {
        std::printf("  %s: localized %lld call site(s)\n", pass.pass_name.c_str(),
                    static_cast<long long>(pass.counter("calls_localized")));
      }
    }
  }

  std::printf("\n== deploying merged function (transparent update, §5.5) ==\n");
  if (Status s = controller.DeployMerged(*graph, *solution, *artifacts, app.root_handle);
      !s.ok()) {
    std::printf("deploy failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const LoadResult merged = Measure(sim, platform, app.root_handle);
  std::printf("median %s  p99 %s  (%lld requests)\n",
              FormatDuration(merged.latency.Median()).c_str(),
              FormatDuration(merged.latency.P99()).c_str(),
              static_cast<long long>(merged.completed));
  std::printf("median improvement: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(merged.latency.Median()) /
                                 static_cast<double>(baseline.latency.Median())));

  std::printf("\n== rollback (§8) ==\n");
  if (Status s = controller.Rollback(app.root_handle); !s.ok()) {
    std::printf("rollback failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const LoadResult rolled = Measure(sim, platform, app.root_handle);
  std::printf("median after rollback: %s (back to remote invocations)\n",
              FormatDuration(rolled.latency.Median()).c_str());
  return 0;
}
