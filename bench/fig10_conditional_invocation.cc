// Figure 10: data-dependent fan-out and conditional invocations (§5.6,
// §7.6).
//
// The fan-out function invokes a memory-intensive callee `num` times, where
// num comes from the request. The container is provisioned for the profiled
// fan-out of 8 (at most 8 concurrent callee instances fit). Three systems:
//   - baseline: unmerged (every call remote);
//   - Quilt without conditional invocations: all calls local -- crashes
//     (container OOM-killed) whenever num > 8;
//   - Quilt with conditional invocations: first 8 calls local, the rest
//     fall back to the remote path -- no crashes, and latency improves in
//     both regimes.
#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"

namespace quilt {
namespace bench {
namespace {

enum class System { kBaseline, kQuiltUnconditional, kQuiltConditional };

const char* SystemName(System system) {
  switch (system) {
    case System::kBaseline:
      return "baseline";
    case System::kQuiltUnconditional:
      return "quilt w/o conditional";
    case System::kQuiltConditional:
      return "quilt w/ conditional";
  }
  return "?";
}

struct Point {
  double mean_latency_ms = 0.0;
  double failure_rate = 0.0;
};

Point RunPoint(System system, int num, int requests = 60) {
  ControllerOptions options;
  options.container_memory_limit_mb = 256.0;  // Fits the profiled fan-out of 8.
  if (system == System::kQuiltUnconditional) {
    options.quiltc.conditional_invocations = false;
  }
  Env env(options);
  const WorkflowApp app = FanOutApp(/*profiled_alpha=*/8);
  if (!env.controller.RegisterWorkflow(app).ok()) {
    return {};
  }
  if (system != System::kBaseline) {
    Result<CallGraph> graph = app.ReferenceGraph();
    if (!graph.ok() ||
        !env.controller.DeploySolutionDirect(app, FullMergeSolution(*graph)).ok()) {
      std::printf("!! deploy failed\n");
      return {};
    }
  }

  // Sequential requests with the given fan-out (mean latency, as in Fig 10).
  LatencyHistogram latency;
  int64_t failed = 0;
  for (int i = 0; i < requests; ++i) {
    Json payload = Json::MakeObject();
    payload["num"] = num;
    SimTime sent = env.sim.now();
    bool ok = false;
    SimTime finished = sent;
    env.platform.Invoke({.caller = kClientCaller,
                         .callee = app.root_handle,
                         .parent = {},
                         .payload = payload,
                         .async = false,
                         .done = [&](Result<Json> r) {
                          ok = r.ok();
                          finished = env.sim.now();
                        }});
    env.sim.Run();
    if (ok) {
      latency.Record(finished - sent);
    } else {
      ++failed;
    }
  }
  Point point;
  point.mean_latency_ms = ToMillis(static_cast<SimDuration>(latency.Mean()));
  point.failure_rate = static_cast<double>(failed) / requests;
  return point;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader(
      "Figure 10: data-dependent fan-out (profiled alpha = 8, container sized for 8)\n"
      "mean latency (ms) and crash rate per fan-out value");
  const std::vector<int> nums = {2, 4, 6, 8, 10, 12, 14};

  std::printf("%22s |", "num =");
  for (int num : nums) {
    std::printf(" %9d", num);
  }
  std::printf("\n");
  for (System system :
       {System::kBaseline, System::kQuiltUnconditional, System::kQuiltConditional}) {
    std::printf("%22s |", SystemName(system));
    std::vector<Point> points;
    for (int num : nums) {
      points.push_back(RunPoint(system, num));
    }
    for (const Point& point : points) {
      if (point.failure_rate > 0.5) {
        std::printf(" %9s", "CRASH");
      } else {
        std::printf(" %9.2f", point.mean_latency_ms);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: below the profiled alpha all three succeed and merged latency is\n"
      "lowest; above it the unconditional merge crashes (OOM) while conditional\n"
      "invocations keep every request alive by sending the overflow remotely.\n");
  return 0;
}
