// Billing engine λ sweep: dollars per million requests vs workflow latency
// as the decision objective slides from pure latency (λ = 1, the seed
// objective) to pure cost (λ = 0) under a provider rate card.
//
// Workload: a three-function workflow that cannot merge whole under the
// container memory limit, so every plan must cut one edge:
//   root -> fastpath   every request, ~0.05 ms of compute;
//   root -> renderer   90% of requests (payload-dependent), ~80 ms, mostly
//                      fake-DB wait.
// Latency-only cuts the lighter edge (renderer): remote-invoking the long
// function double-bills its 80 ms window -- the caller's container is
// blocked-and-billed during the sync call whether it is local or remote,
// and the remote callee bills the same 80 ms again in its own container.
// The cost-aware objective cuts the fastpath edge instead: its remote
// window rounds up to the 1 ms billing granularity, a tiny waste next to
// 80 ms. The sweep measures the live bill of each plan with the CostMeter.
//
// Checks (exit non-zero on violation):
//   * integer exactness: the per-handle CostRecords sum to the meter's
//     aggregate bill, attempt for attempt and nanodollar for nanodollar,
//     and each record's fee + compute subtotals equal its total;
//   * Pareto: some λ < 1 strictly reduces $/1M requests vs λ = 1 while p99
//     stays within `p99_tolerance` of the λ = 1 plan.
//
// Flags:
//   --smoke           fewer λ points and shorter runs (CI); same checks.
//   --json <path>     write machine-readable results (name, config, rows).
#include <cstring>

#include "bench/bench_util.h"
#include "src/billing/cost_meter.h"

namespace quilt {
namespace bench {
namespace {

constexpr char kRoot[] = "cost-root";
constexpr char kFastpath[] = "cost-fastpath";
constexpr char kRenderer[] = "cost-renderer";

// ~0.9 calls per request: the renderer call count comes from the payload
// field "num" (CallItem.data_dependent), drawn 1 with probability 0.9.
Json DrawPayload(Rng& rng) {
  Json payload = Json::MakeObject();
  payload["num"] = rng.Bernoulli(0.9) ? 1 : 0;
  return payload;
}

WorkflowApp CostSweepApp() {
  WorkflowApp app;
  app.name = "cost-sweep";
  app.root_handle = kRoot;

  AppFunctionSpec root;
  root.handle = kRoot;
  root.request_memory_mb = 10.0;
  root.steps = {ComputeStep{0.3}, CallStep{{{kFastpath, 1, false}}, false},
                CallStep{{{kRenderer, 1, true}}, false}};
  app.functions.push_back(root);

  AppFunctionSpec fastpath;
  fastpath.handle = kFastpath;
  fastpath.request_memory_mb = 55.0;
  fastpath.steps = {ComputeStep{0.05}};
  app.functions.push_back(fastpath);

  AppFunctionSpec renderer;
  renderer.handle = kRenderer;
  renderer.request_memory_mb = 55.0;
  renderer.steps = {ComputeStep{6.0}, SleepStep{74.0}};
  app.functions.push_back(renderer);
  return app;
}

LoadResult RunLoad(Env& env, double rps, SimDuration duration, SimDuration warmup) {
  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = rps;
  options.warmup = warmup;
  options.duration = duration;
  options.payload_fn = DrawPayload;
  return generator.Run(&env.sim, &env.platform, kRoot, options);
}

// Which edges the plan cuts, e.g. "root->fastpath" -- the bench's one-line
// description of a decision.
std::string CutEdges(const CallGraph& graph, const MergeSolution& solution) {
  std::string cuts;
  for (EdgeId eid = 0; eid < graph.num_edges(); ++eid) {
    const CallEdge& edge = graph.edge(eid);
    bool local = false;
    for (const MergeGroup& group : solution.groups) {
      if (group.Contains(edge.from) && group.Contains(edge.to)) {
        local = true;
        break;
      }
    }
    if (!local) {
      StrAppend(&cuts, cuts.empty() ? "" : ", ", graph.node(edge.from).name, "->",
                graph.node(edge.to).name);
    }
  }
  return cuts.empty() ? "(none)" : cuts;
}

// The meter's aggregate bill must equal the sum of its per-handle records
// exactly -- nanodollar for nanodollar, attempt for attempt. Every charge is
// an int64 added to both sides, so any drift is a real accounting bug.
bool CheckExactSum(CostMeter& meter) {
  int64_t sum_nanos = 0;
  int64_t sum_attempts = 0;
  for (const CostRecord& record : meter.Records()) {
    if (record.request_fee_nanos + record.compute_nanos != record.total_nanos) {
      std::printf("FAIL: record %s: fee %lld + compute %lld != total %lld\n",
                  record.handle.c_str(), static_cast<long long>(record.request_fee_nanos),
                  static_cast<long long>(record.compute_nanos),
                  static_cast<long long>(record.total_nanos));
      return false;
    }
    sum_nanos += record.total_nanos;
    sum_attempts += record.attempts;
  }
  if (sum_nanos != meter.TotalNanos() || sum_attempts != meter.TotalAttempts()) {
    std::printf("FAIL: record sums (%lld nanos, %lld attempts) != aggregate "
                "(%lld nanos, %lld attempts)\n",
                static_cast<long long>(sum_nanos), static_cast<long long>(sum_attempts),
                static_cast<long long>(meter.TotalNanos()),
                static_cast<long long>(meter.TotalAttempts()));
    return false;
  }
  return true;
}

struct SweepRow {
  double lambda = 1.0;
  std::string cuts;
  int groups = 0;
  int64_t completed = 0;
  int64_t attempts = 0;
  int64_t total_nanos = 0;
  double dollars_per_million = 0.0;
  int64_t p99 = 0;
  bool exact = false;
};

SweepRow RunLambda(double lambda, const PricingProfile& card, double profile_rps, double rps,
                   SimDuration profile_duration, SimDuration measure_duration) {
  SweepRow row;
  row.lambda = lambda;

  ControllerOptions options;
  options.container_cpu_limit = 4.0;
  options.container_memory_limit_mb = 100.0;
  options.cost.cost_weight = lambda;
  options.cost.profile = card;
  PlatformConfig config;
  config.pricing = card;
  Env env(options, config);

  Status registered = env.controller.RegisterWorkflow(CostSweepApp());
  if (!registered.ok()) {
    std::printf("FAIL: register: %s\n", registered.ToString().c_str());
    return row;
  }

  // Profile -> decide (blended objective) -> merge -> deploy. Profiling
  // runs at low rps (~1 request in flight) so the measured cpu/memory node
  // labels are per-request, not inflated by concurrent requests sharing a
  // container.
  env.controller.StartProfiling();
  RunLoad(env, profile_rps, profile_duration, Seconds(5));
  env.controller.StopProfiling();
  Result<CallGraph> graph = env.controller.BuildCallGraph(kRoot);
  Result<MergeSolution> solution = env.controller.OptimizeWorkflow(kRoot);
  if (!graph.ok() || !solution.ok()) {
    std::printf("FAIL: optimize at lambda %.2f: %s\n", lambda,
                (graph.ok() ? solution.status() : graph.status()).ToString().c_str());
    return row;
  }
  row.groups = solution->num_groups();
  row.cuts = CutEdges(*graph, *solution);

  // Measure the deployed plan's live bill from a clean meter (the profiling
  // phase's spend belongs to the baseline deployment, not this plan).
  env.platform.cost_meter().Clear();
  const LoadResult measured = RunLoad(env, rps, measure_duration, Seconds(2));
  row.completed = measured.completed;
  row.p99 = measured.latency.P99();
  row.exact = CheckExactSum(env.platform.cost_meter());

  const QuiltController::CostReport report = env.controller.CollectCostReport();
  row.total_nanos = report.invocation_nanos;
  row.attempts = report.invocation_attempts;
  if (measured.completed > 0) {
    row.dollars_per_million = static_cast<double>(report.invocation_nanos) * 1e-9 /
                              static_cast<double>(measured.completed) * 1e6;
  }
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main(int argc, char** argv) {
  using namespace quilt;
  using namespace quilt::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const PricingProfile card = PricingProfile::PerMillisecond();
  const double profile_rps = 4.0;
  const double rps = smoke ? 50.0 : 100.0;
  const SimDuration profile_duration = smoke ? Seconds(20) : Seconds(40);
  const SimDuration measure_duration = smoke ? Seconds(10) : Seconds(20);
  const double p99_tolerance = 0.25;
  const std::vector<double> lambdas =
      smoke ? std::vector<double>{1.0, 0.5, 0.0}
            : std::vector<double>{1.0, 0.75, 0.5, 0.25, 0.0};

  PrintHeader(StrCat(
      "Billing λ sweep: $/1M requests vs p99 as the objective blends\n"
      "λ·latency + (1-λ)·$ (rate card '", card.name, "', ", FormatDouble(rps, 0),
      " rps open loop)"));

  BenchJson json("fig_cost");
  json.SetConfig("smoke", smoke);
  json.SetConfig("pricing_profile", card.name);
  json.SetConfig("rps", rps);
  json.SetConfig("p99_tolerance", p99_tolerance);

  std::printf("%-6s | %-30s %3s | %9s %9s | %12s %10s | %s\n", "lambda", "cut edges", "grp",
              "requests", "attempts", "$/1M req", "p99", "exact-sum");

  std::vector<SweepRow> rows;
  bool all_exact = true;
  for (double lambda : lambdas) {
    const SweepRow row =
        RunLambda(lambda, card, profile_rps, rps, profile_duration, measure_duration);
    if (row.completed == 0) {
      return 1;  // RunLambda already printed the FAIL line.
    }
    all_exact = all_exact && row.exact;
    std::printf("%-6s | %-30s %3d | %9lld %9lld | %12s %10s | %s\n",
                FormatDouble(row.lambda, 2).c_str(), row.cuts.c_str(), row.groups,
                static_cast<long long>(row.completed), static_cast<long long>(row.attempts),
                FormatDouble(row.dollars_per_million, 2).c_str(),
                FormatDuration(row.p99).c_str(), row.exact ? "ok" : "VIOLATED");

    Json json_row = Json::MakeObject();
    json_row["lambda"] = row.lambda;
    json_row["cut_edges"] = row.cuts;
    json_row["groups"] = static_cast<int64_t>(row.groups);
    json_row["requests"] = row.completed;
    json_row["billed_attempts"] = row.attempts;
    json_row["total_nanodollars"] = row.total_nanos;
    json_row["dollars_per_million_requests"] = row.dollars_per_million;
    json_row["p99_ns"] = row.p99;
    json_row["exact_sum"] = row.exact;
    json.AddRow(std::move(json_row));
    rows.push_back(row);
  }

  if (!all_exact) {
    std::printf("FAIL: per-invocation costs do not sum exactly to the aggregate bill.\n");
    return 1;
  }

  // Pareto check: λ = 1 is the seed objective; some λ < 1 must buy a
  // strictly cheaper plan without giving up more than p99_tolerance of tail
  // latency.
  const SweepRow& base = rows.front();
  bool pareto = false;
  for (const SweepRow& row : rows) {
    if (row.lambda < 1.0 && row.dollars_per_million < base.dollars_per_million &&
        static_cast<double>(row.p99) <=
            static_cast<double>(base.p99) * (1.0 + p99_tolerance)) {
      pareto = true;
    }
  }
  std::printf(
      "\nShape check: λ = 1 reproduces the latency-only plan; lowering λ must find a\n"
      "plan that bills strictly less per request with p99 within %.0f%% of it.\n",
      100.0 * p99_tolerance);
  if (!pareto) {
    std::printf("FAIL: no λ < 1 reduced $/1M requests within the p99 tolerance.\n");
    return 1;
  }
  std::printf("OK: cost-aware decisions trade within the stated p99 tolerance.\n");

  const Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::printf("json write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}
