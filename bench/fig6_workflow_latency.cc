// Figure 6: median and 99th-percentile workflow completion latency for all
// DeathStarBench workflows, baseline vs Quilt, sync and async invocation
// variants (§7.3.1).
//
// Methodology (per the paper): each function capped at max-scale 10
// containers of 2 vCPU / 128 MB; wrk2-style closed loop with 1 connection at
// low load; Quilt gets the same resources as the baseline (the merged
// function's max-scale is the sum of its members'). Expectation: 45-70%
// median improvement on millisecond-scale workflows, little change for the
// multi-second Hotel Reservation workflows.
#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"

namespace quilt {
namespace bench {
namespace {

struct Row {
  std::string workflow;
  int functions = 0;
  int64_t baseline_median = 0;
  int64_t baseline_p99 = 0;
  int64_t quilt_median = 0;
  int64_t quilt_p99 = 0;
  int groups = 0;
};

Row RunWorkflow(const WorkflowApp& app) {
  Row row;
  row.workflow = app.name;
  row.functions = static_cast<int>(app.functions.size());

  Env env;
  Status status = env.controller.RegisterWorkflow(app);
  if (!status.ok()) {
    std::printf("!! %s: %s\n", app.name.c_str(), status.ToString().c_str());
    return row;
  }

  const LoadResult baseline = RunClosedLoop(env, app.root_handle);
  row.baseline_median = baseline.latency.Median();
  row.baseline_p99 = baseline.latency.P99();

  // Full Quilt pipeline: profile -> decide -> merge -> deploy.
  env.controller.StartProfiling();
  RunClosedLoop(env, app.root_handle, 1, Seconds(20));
  env.controller.StopProfiling();
  Result<MergeSolution> solution = env.controller.OptimizeWorkflow(app.root_handle);
  if (!solution.ok()) {
    std::printf("!! %s: decision failed: %s\n", app.name.c_str(),
                solution.status().ToString().c_str());
    return row;
  }
  row.groups = solution->num_groups();

  const LoadResult merged = RunClosedLoop(env, app.root_handle);
  row.quilt_median = merged.latency.Median();
  row.quilt_p99 = merged.latency.P99();
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader(
      "Figure 6: workflow completion latency, baseline vs Quilt\n"
      "(closed loop, 1 connection; 2 vCPU / 128 MB containers, max-scale 10)");
  std::printf("%-26s %3s %3s | %12s %12s | %12s %12s | %7s %7s\n", "workflow", "fns", "grp",
              "base p50", "base p99", "quilt p50", "quilt p99", "d-p50%", "d-p99%");

  double min_improvement = 1e9;
  double max_improvement = -1e9;
  for (const WorkflowApp& app : AllFigure6Workflows()) {
    const Row row = RunWorkflow(app);
    if (row.quilt_median == 0) {
      continue;
    }
    const double dp50 = ImprovementPct(row.baseline_median, row.quilt_median);
    const double dp99 = ImprovementPct(row.baseline_p99, row.quilt_p99);
    std::printf("%-26s %3d %3d | %12s %12s | %12s %12s | %6.1f%% %6.1f%%\n",
                row.workflow.c_str(), row.functions, row.groups,
                FormatDuration(row.baseline_median).c_str(),
                FormatDuration(row.baseline_p99).c_str(),
                FormatDuration(row.quilt_median).c_str(),
                FormatDuration(row.quilt_p99).c_str(), dp50, dp99);
    // Millisecond-scale workflows are the paper's improvement band; the HR
    // multi-second workflows sit near zero by design.
    if (row.baseline_median < Seconds(1)) {
      min_improvement = std::min(min_improvement, dp50);
      max_improvement = std::max(max_improvement, dp50);
    }
  }
  std::printf(
      "\nmedian-latency improvement across millisecond-scale workflows: "
      "%.1f%%-%.1f%% (paper: 45.63%%-70.95%%)\n",
      min_improvement, max_improvement);
  std::printf("multi-second Hotel Reservation workflows see little benefit, as in the paper.\n");
  return 0;
}
