// Figure 8b: time to find merge groupings (§7.5.2).
//
// Random rDAGs (|E| = 1.2|V|, 10% async edges, random CPU/memory, limits
// sized so at least two containers are needed); three algorithms:
//   - optimal (exhaustive k-sweep over candidate root sets, Phase-2 ILP),
//   - simple heuristic (weighted in-degree candidate pool),
//   - Downstream Impact heuristic.
// Medians with p5/p95 over repeated trials. The optimal solver is only run
// on small graphs (its candidate-set count is 2^(|V|-1)); for graphs beyond
// the heuristic pool regime the GRASP large-graph procedure (Appendix C.4)
// carries the DIH column, as in the paper.
#include <algorithm>
#include <chrono>

#include "bench/bench_util.h"
#include "src/graph/random_dag.h"
#include "src/partition/decision_engine.h"
#include "src/partition/grasp_solver.h"
#include "src/partition/heuristic_solver.h"
#include "src/partition/optimal_solver.h"
#include "src/partition/scorers.h"

namespace quilt {
namespace bench {
namespace {

MergeProblem ProblemFor(const CallGraph& graph) {
  double total_mem = 0.0;
  double max_mem = 0.0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    total_mem += graph.node(id).memory;
    max_mem = std::max(max_mem, graph.node(id).memory);
  }
  // At least 2 containers required: limit below the full-merge demand.
  return MergeProblem{&graph, /*cpu_limit=*/1e9, std::max(total_mem * 0.5, max_mem * 2.0)};
}

struct Timing {
  std::vector<double> ms;
  double Quantile(double q) {
    if (ms.empty()) {
      return 0.0;
    }
    std::sort(ms.begin(), ms.end());
    const size_t index = std::min(ms.size() - 1, static_cast<size_t>(q * ms.size()));
    return ms[index];
  }
};

template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader("Figure 8b: merge-decision time vs graph size (median [p5,p95] ms)");
  std::printf("%6s %7s | %26s | %26s | %26s\n", "nodes", "trials", "optimal",
              "weighted-in-degree", "downstream-impact");

  const std::vector<int> sizes = {5, 8, 10, 12, 25, 50, 100, 200, 400, 800};
  Rng master(20250704);

  for (int n : sizes) {
    const int trials = n <= 25 ? 15 : (n <= 200 ? 6 : 3);
    const bool run_optimal = n <= 12;
    Timing optimal_t;
    Timing indeg_t;
    Timing dih_t;
    for (int trial = 0; trial < trials; ++trial) {
      RandomDagOptions options;
      options.num_nodes = n;
      CallGraph graph = GenerateRandomRdag(options, master);
      MergeProblem problem = ProblemFor(graph);

      if (run_optimal) {
        OptimalSolver solver;
        optimal_t.ms.push_back(TimeMs([&] { (void)solver.Solve(problem); }));
      }
      if (n <= 25) {
        WeightedInDegreeScorer indeg;
        DownstreamImpactScorer dih;
        HeuristicSolver hs_indeg(indeg);
        HeuristicSolver hs_dih(dih);
        indeg_t.ms.push_back(TimeMs([&] { (void)hs_indeg.Solve(problem); }));
        dih_t.ms.push_back(TimeMs([&] { (void)hs_dih.Solve(problem); }));
      } else {
        // Large-graph regime: GRASP (Appendix C.4) with each scorer.
        WeightedInDegreeScorer indeg;
        DownstreamImpactScorer dih;
        GraspSolver gs_indeg(indeg);
        GraspSolver gs_dih(dih);
        SolverOptions grasp_options = SolverOptions::GraspDefaults();
        grasp_options.draws_per_size = 2;
        grasp_options.max_nodes_per_ilp = 150000;  // Bound pathological pools.
        grasp_options.seed = 1000 + trial;
        indeg_t.ms.push_back(TimeMs([&] { (void)gs_indeg.Solve(problem, grasp_options); }));
        dih_t.ms.push_back(TimeMs([&] { (void)gs_dih.Solve(problem, grasp_options); }));
      }
    }
    auto cell = [](Timing& t) {
      if (t.ms.empty()) {
        return std::string("--");
      }
      return StrCat(FormatDouble(t.Quantile(0.5), 1), " [", FormatDouble(t.Quantile(0.05), 1),
                    ", ", FormatDouble(t.Quantile(0.95), 1), "]");
    };
    std::printf("%6d %7d | %26s | %26s | %26s\n", n, trials, cell(optimal_t).c_str(),
                cell(indeg_t).c_str(), cell(dih_t).c_str());
  }
  std::printf(
      "\nShape check (paper): optimal explodes beyond ~20 nodes; DIH stays sub-second\n"
      "up to 200 nodes and a few seconds at 800.\n");

  // ---- Decision engine: per-solver breakdown + Phase-2 ILP cache. ----
  // The merge monitor re-runs Decide continuously (§8); a stable profile makes
  // every Phase-2 solve of the second decision a cache hit. Compare recurring
  // decisions (decide + re-decide) with the cache on vs off at each policy
  // regime, including a >=200-node GRASP decision.
  PrintHeader("Decision engine: solver breakdown and ILP-cache effect (decide + re-decide)");
  std::printf("%6s %10s | %23s | %23s | %8s\n", "nodes", "solver", "cache on (solves/hits)",
              "cache off (solves/hits)", "speedup");
  Rng engine_master(424242);
  for (int n : {10, 20, 200}) {
    RandomDagOptions options;
    options.num_nodes = n;
    CallGraph graph = GenerateRandomRdag(options, engine_master);
    MergeProblem problem = ProblemFor(graph);

    auto run_pair = [&](bool enable_cache, DecisionRecord records[2]) {
      DecisionEngineOptions engine_options;
      engine_options.enable_cache = enable_cache;
      engine_options.seed = 7;
      DecisionEngine engine(engine_options);
      for (int round = 0; round < 2; ++round) {
        (void)engine.Decide(problem, &records[round]);
      }
    };
    DecisionRecord with_cache[2];
    DecisionRecord without_cache[2];
    run_pair(true, with_cache);
    run_pair(false, without_cache);

    const int64_t cached_solves =
        with_cache[0].ilp_solves - with_cache[0].ilp_cache_hits +
        with_cache[1].ilp_solves - with_cache[1].ilp_cache_hits;
    const int64_t cached_hits = with_cache[0].ilp_cache_hits + with_cache[1].ilp_cache_hits;
    const int64_t fresh_solves = without_cache[0].ilp_solves + without_cache[1].ilp_solves;
    const double lookups = static_cast<double>(cached_solves + cached_hits);
    std::printf("%6d %10s | %10lld / %8lld | %10lld / %8lld | %7.1fx\n", n,
                with_cache[0].solver.c_str(), static_cast<long long>(cached_solves),
                static_cast<long long>(cached_hits), static_cast<long long>(fresh_solves),
                0LL, cached_solves > 0 ? static_cast<double>(fresh_solves) / cached_solves : 0.0);
    std::printf("       %10s | hit rate %.0f%%; wall %s -> %s ms (cache on, decide -> re-decide)\n",
                "", lookups > 0 ? 100.0 * cached_hits / lookups : 0.0,
                FormatDouble(with_cache[0].wall_ms, 1).c_str(),
                FormatDouble(with_cache[1].wall_ms, 1).c_str());
  }
  std::printf(
      "\nShape check: the re-decide pass answers every Phase-2 ILP from the cache, so\n"
      "recurring decisions need >=2x fewer fresh ILP solves than with the cache off.\n");
  return 0;
}
