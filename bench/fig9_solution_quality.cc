// Figures 9a/9b: quality of the merging decisions (§7.5.2).
//
// 9a -- optimality gap (Cost_H - Cost_O) / (Cost_B - Cost_O) of the
// Downstream Impact heuristic vs the simple weighted-in-degree heuristic,
// against the exact optimum on random rDAGs (gap 0 = matched the optimum,
// 1 = no better than not merging).
//
// 9b -- number of non-local calls under each heuristic on larger graphs
// (where the optimum is unobtainable): DIH should yield many times fewer
// remote invocations than weighted in-degree.
#include <algorithm>

#include "bench/bench_util.h"
#include "src/graph/random_dag.h"
#include "src/partition/grasp_solver.h"
#include "src/partition/heuristic_solver.h"
#include "src/partition/metrics.h"
#include "src/partition/optimal_solver.h"
#include "src/partition/scorers.h"

namespace quilt {
namespace bench {
namespace {

MergeProblem ProblemFor(const CallGraph& graph) {
  double total_mem = 0.0;
  double max_mem = 0.0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    total_mem += graph.node(id).memory;
    max_mem = std::max(max_mem, graph.node(id).memory);
  }
  return MergeProblem{&graph, /*cpu_limit=*/1e9, std::max(total_mem * 0.5, max_mem * 2.0)};
}

struct Stats {
  std::vector<double> values;
  double Mean() const {
    double sum = 0.0;
    for (double v : values) {
      sum += v;
    }
    return values.empty() ? 0.0 : sum / static_cast<double>(values.size());
  }
  double Stdev() const {
    if (values.size() < 2) {
      return 0.0;
    }
    const double mean = Mean();
    double ss = 0.0;
    for (double v : values) {
      ss += (v - mean) * (v - mean);
    }
    return std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
};

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  // ---- Figure 9a: optimality gap on small graphs. ----
  PrintHeader("Figure 9a: optimality gap vs graph size (mean +/- stdev; lower is better)");
  std::printf("%6s %7s | %22s | %22s\n", "nodes", "trials", "weighted-in-degree",
              "downstream-impact");
  Rng master(7);
  for (int n : {6, 8, 10, 12}) {
    const int trials = 25;
    Stats indeg_gap;
    Stats dih_gap;
    for (int trial = 0; trial < trials; ++trial) {
      RandomDagOptions options;
      options.num_nodes = n;
      CallGraph graph = GenerateRandomRdag(options, master);
      MergeProblem problem = ProblemFor(graph);

      OptimalSolver optimal;
      Result<MergeSolution> opt = optimal.Solve(problem);
      if (!opt.ok()) {
        continue;
      }
      const double baseline_cost = graph.TotalEdgeWeight();

      WeightedInDegreeScorer indeg_scorer;
      DownstreamImpactScorer dih_scorer;
      HeuristicSolver indeg(indeg_scorer);
      HeuristicSolver dih(dih_scorer);
      Result<MergeSolution> h1 = indeg.Solve(problem);
      Result<MergeSolution> h2 = dih.Solve(problem);
      const double c1 = h1.ok() ? h1->cross_cost : baseline_cost;
      const double c2 = h2.ok() ? h2->cross_cost : baseline_cost;
      indeg_gap.values.push_back(OptimalityGap(c1, opt->cross_cost, baseline_cost));
      dih_gap.values.push_back(OptimalityGap(c2, opt->cross_cost, baseline_cost));
    }
    std::printf("%6d %7d | %10.4f +/- %8.4f | %10.4f +/- %8.4f\n", n, trials,
                indeg_gap.Mean(), indeg_gap.Stdev(), dih_gap.Mean(), dih_gap.Stdev());
  }
  std::printf("(paper: DIH gap ~0.04 at 25 nodes; weighted-degree much worse)\n");

  // ---- Figure 9b: non-local calls on larger graphs. ----
  PrintHeader("Figure 9b: remote (non-local) calls per profile window, larger graphs");
  std::printf("%6s %7s | %14s %14s %14s | %8s\n", "nodes", "trials", "baseline",
              "in-degree", "dih", "ratio");
  for (int n : {25, 50, 100, 200}) {
    const int trials = 6;
    Stats indeg_cost;
    Stats dih_cost;
    Stats base_cost;
    for (int trial = 0; trial < trials; ++trial) {
      RandomDagOptions options;
      options.num_nodes = n;
      CallGraph graph = GenerateRandomRdag(options, master);
      MergeProblem problem = ProblemFor(graph);
      base_cost.values.push_back(graph.TotalEdgeWeight());

      WeightedInDegreeScorer indeg_scorer;
      DownstreamImpactScorer dih_scorer;
      if (n <= 25) {
        HeuristicSolver indeg(indeg_scorer);
        HeuristicSolver dih(dih_scorer);
        Result<MergeSolution> h1 = indeg.Solve(problem);
        Result<MergeSolution> h2 = dih.Solve(problem);
        indeg_cost.values.push_back(h1.ok() ? h1->cross_cost : graph.TotalEdgeWeight());
        dih_cost.values.push_back(h2.ok() ? h2->cross_cost : graph.TotalEdgeWeight());
      } else {
        GraspSolver indeg(indeg_scorer);
        GraspSolver dih(dih_scorer);
        SolverOptions grasp_options = SolverOptions::GraspDefaults();
        grasp_options.seed = 300 + trial;
        Result<MergeSolution> h1 = indeg.Solve(problem, grasp_options);
        Result<MergeSolution> h2 = dih.Solve(problem, grasp_options);
        indeg_cost.values.push_back(h1.ok() ? h1->cross_cost : graph.TotalEdgeWeight());
        dih_cost.values.push_back(h2.ok() ? h2->cross_cost : graph.TotalEdgeWeight());
      }
    }
    const double ratio = dih_cost.Mean() > 0 ? indeg_cost.Mean() / dih_cost.Mean() : 0.0;
    std::printf("%6d %7d | %14.0f %14.0f %14.0f | %7.1fx\n", n, trials, base_cost.Mean(),
                indeg_cost.Mean(), dih_cost.Mean(), ratio);
  }
  std::printf("(paper: DIH yields up to hundreds of times fewer non-local calls)\n");
  return 0;
}
