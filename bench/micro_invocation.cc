// Microbenchmarks (google-benchmark): the primitive costs behind the
// paper's headline claim that merged invocations take nanoseconds instead of
// milliseconds (§1), plus the hot paths of the decision machinery.
#include <benchmark/benchmark.h>

#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/graph/descendants.h"
#include "src/graph/random_dag.h"
#include "src/ilp/ilp_solver.h"
#include "src/platform/platform.h"
#include "src/partition/ilp_encoding.h"
#include "src/partition/scorers.h"
#include "src/runtime/executor.h"
#include "src/sim/simulation.h"

namespace quilt {
namespace {

// Virtual-time cost of a localized (merged) call vs the full remote path.
// Reported as "items" of simulated nanoseconds per invocation.
void BM_SimulatedLocalCallPath(benchmark::State& state) {
  RuntimeCosts costs;
  SimDuration total = 0;
  for (auto _ : state) {
    total += costs.local_call_overhead;
    benchmark::DoNotOptimize(total);
  }
  state.counters["sim_ns_per_call"] = static_cast<double>(costs.local_call_overhead);
}
BENCHMARK(BM_SimulatedLocalCallPath);

void BM_SimulatedRemoteCallPath(benchmark::State& state) {
  // serialize + rtt/2 + gateway (x2 for the response) + handler work, taken
  // from the platform's default configuration.
  const PlatformConfig config;
  const SimDuration remote_path =
      2 * (config.serialize_latency + config.network_rtt / 2 + config.gateway_overhead) +
      Milliseconds(config.runtime.handler_cpu_ms + config.runtime.invoke_cpu_ms);
  SimDuration total = 0;
  for (auto _ : state) {
    total += remote_path;
    benchmark::DoNotOptimize(total);
  }
  state.counters["sim_ns_per_call"] = static_cast<double>(remote_path);
}
BENCHMARK(BM_SimulatedRemoteCallPath);

void BM_JsonPayloadRoundTrip(benchmark::State& state) {
  Json payload = Json::MakeObject();
  payload["user"] = "alice";
  payload["text"] = "a review body with some characters in it";
  payload["rating"] = 5;
  const std::string text = payload.Dump();
  for (auto _ : state) {
    Result<Json> parsed = Json::Parse(text);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_JsonPayloadRoundTrip);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram histogram;
  int64_t v = 1;
  for (auto _ : state) {
    histogram.Record(v);
    v = v * 1664525 + 1013904223;
    v &= 0xFFFFFFF;
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_DescendantAnalysis(benchmark::State& state) {
  Rng rng(1);
  RandomDagOptions options;
  options.num_nodes = static_cast<int>(state.range(0));
  const CallGraph graph = GenerateRandomRdag(options, rng);
  for (auto _ : state) {
    DescendantAnalysis analysis(graph);
    benchmark::DoNotOptimize(analysis.DownstreamCpu(0));
  }
}
BENCHMARK(BM_DescendantAnalysis)->Arg(50)->Arg(200)->Arg(800);

void BM_DihScoring(benchmark::State& state) {
  Rng rng(2);
  RandomDagOptions options;
  options.num_nodes = static_cast<int>(state.range(0));
  const CallGraph graph = GenerateRandomRdag(options, rng);
  MergeProblem problem{&graph, 100.0, 10000.0};
  DownstreamImpactScorer scorer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.Score(problem));
  }
}
BENCHMARK(BM_DihScoring)->Arg(50)->Arg(200)->Arg(800);

void BM_Phase2IlpSmall(benchmark::State& state) {
  Rng rng(3);
  RandomDagOptions options;
  options.num_nodes = 10;
  const CallGraph graph = GenerateRandomRdag(options, rng);
  double total_mem = 0.0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    total_mem += graph.node(id).memory;
  }
  MergeProblem problem{&graph, 1e9, total_mem * 0.5};
  const std::vector<NodeId> roots = {graph.root(), 3, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveForRoots(problem, roots));
  }
}
BENCHMARK(BM_Phase2IlpSmall);

void BM_EventLoopThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopThroughput);

}  // namespace
}  // namespace quilt

BENCHMARK_MAIN();
