// Figure 8 (c/d): cost of compiling and merging workflows (§7.5.3).
//
// Runs every DeathStarBench workflow through the full compilation pipeline
// and reports the modeled wall-clock of each stage. Expectations from the
// paper: compile+link dominated by dependency builds (~1.5 min regardless of
// function count -- read-home-timeline with 2 functions costs about the same
// as compose-review with 15), merge time linear in the number of functions
// and of the same order.
#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"
#include "src/quiltc/compiler.h"

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader("Figure 8c/8d: compile, link, merge, and codegen time per workflow");
  std::printf("%-26s %4s | %10s %10s %10s %10s | %10s\n", "workflow", "fns", "compile",
              "link", "merge", "codegen", "total");

  QuiltCompiler compiler;
  const std::vector<WorkflowApp> workflows = {
      ReadHomeTimeline(),  ReadUserReview(),        NearbyCinema(),
      FollowWithUname(true), PageService(true),     SearchHandler(),
      ReservationHandler(), ComposePost(true),      ComposeReview(true),
  };
  for (const WorkflowApp& app : workflows) {
    Result<CallGraph> graph = app.ReferenceGraph();
    if (!graph.ok()) {
      std::printf("!! %s: %s\n", app.name.c_str(), graph.status().ToString().c_str());
      continue;
    }
    Result<MergedArtifact> artifact =
        compiler.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources());
    if (!artifact.ok()) {
      std::printf("!! %s: %s\n", app.name.c_str(), artifact.status().ToString().c_str());
      continue;
    }
    std::printf("%-26s %4zu | %10s %10s %10s %10s | %10s\n", app.name.c_str(),
                app.functions.size(), FormatDuration(artifact->compile_time).c_str(),
                FormatDuration(artifact->link_time).c_str(),
                FormatDuration(artifact->merge_time).c_str(),
                FormatDuration(artifact->codegen_time).c_str(),
                FormatDuration(artifact->TotalPipelineTime()).c_str());
  }
  std::printf(
      "\nShape check: compile/link dominated by (shared) dependency builds; merge time\n"
      "scales linearly with function count; everything is minutes-scale, background work.\n");
  return 0;
}
