// Figure 8 (c/d): cost of compiling and merging workflows (§7.5.3).
//
// Part 1 runs every DeathStarBench workflow through the full compilation
// pipeline and reports the modeled wall-clock of each stage. Expectations
// from the paper: compile+link dominated by dependency builds (~1.5 min
// regardless of function count -- read-home-timeline with 2 functions costs
// about the same as compose-review with 15), merge time linear in the
// number of functions and of the same order.
//
// Part 2 measures what the CompileService's content-addressed caches buy
// across a controller lifecycle (register -> profile -> optimize ->
// reconsider -> rollback -> re-optimize): the baseline single builds seed
// the per-function IR cache, so the deploy merge runs zero fresh frontend
// compiles, and the re-deploy answers from the artifact cache outright.
// The run FAILS (nonzero exit) unless caching cuts fresh per-function IR
// compiles by at least 2x versus the cache-off configuration.
//
// Flags:
//   --smoke           small workflow + short loads (CI); same pipeline.
//   --json <path>     write machine-readable results (name, config, rows).
#include <cstring>

#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"

namespace quilt {
namespace bench {
namespace {

struct CycleResult {
  CompileServiceStats stats;
  bool ok = false;
};

// One controller lifecycle over `app` with the compile caches on or off.
CycleResult RunLifecycle(const WorkflowApp& app, bool caches, bool smoke) {
  CycleResult result;
  ControllerOptions options;
  options.compile_ir_cache = caches;
  options.compile_artifact_cache = caches;
  Env env(options);

  const SimDuration load_time = smoke ? Seconds(12) : Seconds(30);
  auto profile = [&]() {
    env.controller.StartProfiling();
    RunClosedLoop(env, app.root_handle, /*connections=*/1, load_time);
    env.controller.StopProfiling();
  };

  // Register: one baseline single build per function.
  if (!env.controller.RegisterWorkflow(app).ok()) {
    return result;
  }
  // Profile -> decide -> merge -> deploy.
  profile();
  if (!env.controller.OptimizeWorkflow(app.root_handle).ok()) {
    return result;
  }
  // Fresh window over the merged deployment, then reconsider (the usual
  // steady-state outcome: profile unchanged, nothing recompiled).
  profile();
  if (!env.controller.ReconsiderWorkflow(app.root_handle).ok()) {
    return result;
  }
  // Roll back, profile the restored baseline, optimize again: with caches,
  // the re-merge is answered from the artifact/IR caches.
  if (!env.controller.RollbackDeployment(app.root_handle).ok()) {
    return result;
  }
  profile();
  if (!env.controller.OptimizeWorkflow(app.root_handle).ok()) {
    return result;
  }

  result.stats = env.controller.compile_service()->stats();
  result.ok = true;
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main(int argc, char** argv) {
  using namespace quilt;
  using namespace quilt::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  BenchJson json("fig8c_merge_time");
  json.SetConfig("smoke", smoke);

  PrintHeader("Figure 8c/8d: compile, link, merge, and codegen time per workflow");
  std::printf("%-26s %4s | %10s %10s %10s %10s | %10s\n", "workflow", "fns", "compile",
              "link", "merge", "codegen", "total");

  CompileService service;
  const std::vector<WorkflowApp> workflows = {
      ReadHomeTimeline(),  ReadUserReview(),        NearbyCinema(),
      FollowWithUname(true), PageService(true),     SearchHandler(),
      ReservationHandler(), ComposePost(true),      ComposeReview(true),
  };
  for (const WorkflowApp& app : workflows) {
    Result<CallGraph> graph = app.ReferenceGraph();
    if (!graph.ok()) {
      std::printf("!! %s: %s\n", app.name.c_str(), graph.status().ToString().c_str());
      continue;
    }
    Result<MergedArtifact> artifact =
        service.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources());
    if (!artifact.ok()) {
      std::printf("!! %s: %s\n", app.name.c_str(), artifact.status().ToString().c_str());
      continue;
    }
    std::printf("%-26s %4zu | %10s %10s %10s %10s | %10s\n", app.name.c_str(),
                app.functions.size(), FormatDuration(artifact->compile_time).c_str(),
                FormatDuration(artifact->link_time).c_str(),
                FormatDuration(artifact->merge_time).c_str(),
                FormatDuration(artifact->codegen_time).c_str(),
                FormatDuration(artifact->TotalPipelineTime()).c_str());
    Json row = Json::MakeObject();
    row["workflow"] = app.name;
    row["functions"] = static_cast<int64_t>(app.functions.size());
    row["compile_s"] = ToSeconds(artifact->compile_time);
    row["link_s"] = ToSeconds(artifact->link_time);
    row["merge_s"] = ToSeconds(artifact->merge_time);
    row["codegen_s"] = ToSeconds(artifact->codegen_time);
    row["total_s"] = ToSeconds(artifact->TotalPipelineTime());
    json.AddRow(std::move(row));
  }
  std::printf(
      "\nShape check: compile/link dominated by (shared) dependency builds; merge time\n"
      "scales linearly with function count; everything is minutes-scale, background work.\n");

  // --- Part 2: cached re-merge across a controller lifecycle.
  const WorkflowApp cycle_app = smoke ? ReadUserReview() : ComposeReview(true);
  PrintHeader(StrCat("Cached re-merge: register -> optimize -> reconsider -> rollback -> "
                     "re-optimize (", cycle_app.name, ")"));

  const CycleResult uncached = RunLifecycle(cycle_app, /*caches=*/false, smoke);
  const CycleResult cached = RunLifecycle(cycle_app, /*caches=*/true, smoke);
  if (!uncached.ok || !cached.ok) {
    std::printf("!! lifecycle run failed\n");
    return 1;
  }

  std::printf("%-28s %14s %14s\n", "", "cache off", "cache on");
  std::printf("%-28s %14lld %14lld\n", "fresh frontend compiles",
              static_cast<long long>(uncached.stats.frontend_compiles),
              static_cast<long long>(cached.stats.frontend_compiles));
  std::printf("%-28s %14lld %14lld\n", "merges built",
              static_cast<long long>(uncached.stats.merges_built),
              static_cast<long long>(cached.stats.merges_built));
  std::printf("%-28s %14s %14s\n", "IR cache hit rate", "--",
              StrCat(FormatDouble(100.0 * cached.stats.IrHitRate(), 1), "%").c_str());
  std::printf("%-28s %14s %14s\n", "artifact cache hit rate", "--",
              StrCat(FormatDouble(100.0 * cached.stats.ArtifactHitRate(), 1), "%").c_str());
  std::printf("%-28s %14s %14s\n", "modeled compile cost",
              FormatDuration(Seconds(uncached.stats.modeled_cost_s)).c_str(),
              FormatDuration(Seconds(cached.stats.modeled_cost_s)).c_str());
  std::printf("%-28s %14s %14s\n", "charged (incremental) cost",
              FormatDuration(Seconds(uncached.stats.charged_cost_s)).c_str(),
              FormatDuration(Seconds(cached.stats.charged_cost_s)).c_str());

  json.SetConfig("cycle_workflow", cycle_app.name);
  Json cycle = Json::MakeObject();
  cycle["series"] = std::string("lifecycle");
  cycle["fresh_compiles_cache_off"] = uncached.stats.frontend_compiles;
  cycle["fresh_compiles_cache_on"] = cached.stats.frontend_compiles;
  cycle["ir_hit_rate"] = cached.stats.IrHitRate();
  cycle["artifact_hit_rate"] = cached.stats.ArtifactHitRate();
  cycle["modeled_cost_s_cache_off"] = uncached.stats.modeled_cost_s;
  cycle["modeled_cost_s_cache_on"] = cached.stats.modeled_cost_s;
  cycle["charged_cost_s_cache_off"] = uncached.stats.charged_cost_s;
  cycle["charged_cost_s_cache_on"] = cached.stats.charged_cost_s;
  json.AddRow(std::move(cycle));

  Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::printf("!! %s\n", written.ToString().c_str());
    return 1;
  }

  // Guard: the caches must cut fresh per-function IR compiles >= 2x across
  // the lifecycle (incremental compilation is the point of the service).
  if (cached.stats.frontend_compiles * 2 > uncached.stats.frontend_compiles) {
    std::printf("\nFAIL: caching cut fresh compiles %lld -> %lld (< 2x)\n",
                static_cast<long long>(uncached.stats.frontend_compiles),
                static_cast<long long>(cached.stats.frontend_compiles));
    return 1;
  }
  std::printf("\nOK: caching cut fresh frontend compiles %lld -> %lld (>= 2x)\n",
              static_cast<long long>(uncached.stats.frontend_compiles),
              static_cast<long long>(cached.stats.frontend_compiles));
  return 0;
}
