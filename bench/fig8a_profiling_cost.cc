// Figure 8a: cost of profiling (§7.5.1). A no-op function is driven across
// offered loads with tracing/profiling disabled and enabled; the profiling
// hop (nginx ingress + OpenTelemetry + cAdvisor sampling) should add only
// marginal latency. The run also exhibits Fission's quirk of median latency
// *decreasing* with load before saturation (router address-cache effects).
#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"

namespace quilt {
namespace bench {
namespace {

struct Point {
  double achieved = 0.0;
  int64_t median = 0;
  int64_t p99 = 0;
};

Point RunPoint(bool profiling, double rps) {
  Env env;
  const WorkflowApp app = NoOpFunction();
  if (!env.controller.RegisterWorkflow(app).ok()) {
    return {};
  }
  if (profiling) {
    env.controller.StartProfiling();
  }
  const LoadResult load = RunOpenLoop(env, app.root_handle, rps, Seconds(20), Seconds(4));
  return Point{load.AchievedRps(), load.latency.Median(), load.latency.P99()};
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader("Figure 8a: no-op function latency/throughput with and without profiling");
  const std::vector<double> rates = {1, 5, 20, 100, 500, 2000, 8000, 16000};

  std::printf("%10s | %12s %12s | %12s %12s | %10s\n", "offered", "p50 (off)", "p99 (off)",
              "p50 (on)", "p99 (on)", "p50 delta");
  for (double rps : rates) {
    const Point off = RunPoint(false, rps);
    const Point on = RunPoint(true, rps);
    std::printf("%10.0f | %12s %12s | %12s %12s | %10s\n", rps,
                FormatDuration(off.median).c_str(), FormatDuration(off.p99).c_str(),
                FormatDuration(on.median).c_str(), FormatDuration(on.p99).c_str(),
                FormatDuration(on.median - off.median).c_str());
  }
  std::printf(
      "\nShape check: the profiling hop adds only the ingress overhead (~0.15ms);\n"
      "median latency dips as load rises (warm route cache) before queueing takes over.\n");
  return 0;
}
