// Ablation: root-candidate scorers (§4.3, Appendix C).
//
// The paper motivates the Downstream Impact heuristic by the failure of
// "simple" candidates: weighted in-degree, weighted out-degree, and
// betweenness centrality look at local node properties and miss downstream
// resource pressure. This harness runs all four scorers through the same
// Phase-1/Phase-2 machinery on random rDAGs and reports cost and time.
#include <algorithm>
#include <chrono>

#include "bench/bench_util.h"
#include "src/graph/random_dag.h"
#include "src/partition/heuristic_solver.h"
#include "src/partition/metrics.h"
#include "src/partition/optimal_solver.h"
#include "src/partition/scorers.h"

namespace quilt {
namespace bench {
namespace {

MergeProblem ProblemFor(const CallGraph& graph) {
  double total_mem = 0.0;
  double max_mem = 0.0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    total_mem += graph.node(id).memory;
    max_mem = std::max(max_mem, graph.node(id).memory);
  }
  // Both resource dimensions bind, so the downstream CPU/memory terms of the
  // DIH score are exercised.
  double total_cpu = 0.0;
  double max_cpu = 0.0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    total_cpu += graph.node(id).cpu;
    max_cpu = std::max(max_cpu, graph.node(id).cpu);
  }
  return MergeProblem{&graph, std::max(total_cpu * 0.5, max_cpu * 2.0),
                      std::max(total_mem * 0.5, max_mem * 2.0)};
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader("Ablation: root scorers (mean optimality gap / mean decision ms)");

  WeightedInDegreeScorer in_degree;
  WeightedOutDegreeScorer out_degree;
  BetweennessScorer betweenness;
  DownstreamImpactScorer dih;
  const std::vector<std::pair<const char*, RootScorer*>> scorers = {
      {"weighted-in-degree", &in_degree},
      {"weighted-out-degree", &out_degree},
      {"betweenness", &betweenness},
      {"downstream-impact", &dih},
  };

  std::printf("%6s %7s |", "nodes", "trials");
  for (const auto& [name, scorer] : scorers) {
    std::printf(" %22s |", name);
  }
  std::printf("\n");

  Rng master(17);
  for (int n : {8, 10, 12}) {
    const int trials = 20;
    std::vector<double> gap_sum(scorers.size(), 0.0);
    std::vector<double> ms_sum(scorers.size(), 0.0);
    int counted = 0;
    for (int trial = 0; trial < trials; ++trial) {
      RandomDagOptions options;
      options.num_nodes = n;
      CallGraph graph = GenerateRandomRdag(options, master);
      MergeProblem problem = ProblemFor(graph);
      OptimalSolver optimal;
      Result<MergeSolution> opt = optimal.Solve(problem);
      if (!opt.ok()) {
        continue;
      }
      ++counted;
      for (size_t i = 0; i < scorers.size(); ++i) {
        HeuristicSolver solver(*scorers[i].second);
        const auto start = std::chrono::steady_clock::now();
        Result<MergeSolution> solution = solver.Solve(problem);
        ms_sum[i] += std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
        const double cost = solution.ok() ? solution->cross_cost : graph.TotalEdgeWeight();
        gap_sum[i] += OptimalityGap(cost, opt->cross_cost, graph.TotalEdgeWeight());
      }
    }
    std::printf("%6d %7d |", n, counted);
    for (size_t i = 0; i < scorers.size(); ++i) {
      std::printf("    %6.4f / %7.1f ms |", gap_sum[i] / counted, ms_sum[i] / counted);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: downstream-impact has the lowest gap; the local heuristics trail\n"
      "because they ignore the resource footprint of candidates' descendants.\n");
  return 0;
}
