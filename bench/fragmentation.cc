// Resource fragmentation vs merge granularity (§4, "Are container limits
// reasonable?") -- offline prediction vs live placement.
//
// For the compose-post workflow, sweeps merge granularity from "no merging"
// (11 small containers per replica) to "merge everything into one giant
// container with proportionally raised limits". Each granularity is packed
// twice onto 16-vCPU workers:
//   offline -- the PlaceContainers model (first-fit decreasing);
//   live    -- a real Platform sharded into finite WorkerNodes, warm
//              containers spawned through the PlacementEngine in the same
//              descending size order.
// Both paths route every decision through the shared PickNode packing core,
// so live stranding must land within a small tolerance of the offline
// prediction; the bench exits non-zero when it does not.
//
// Flags:
//   --smoke           fewer replicas (CI); same pipeline and checks.
//   --json <path>     write machine-readable results (name, config, rows).
#include <cstring>

#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"
#include "src/platform/cluster.h"

namespace quilt {
namespace bench {
namespace {

struct Scenario {
  const char* name;
  // Container shapes per workflow replica: (cpu, memory_mb, count).
  std::vector<std::tuple<double, double, int>> shapes;

  std::vector<ContainerRequest> PerReplica(int replicas) const {
    std::vector<ContainerRequest> requests;
    for (const auto& [cpu, mem, count] : shapes) {
      requests.push_back({"c", cpu, mem, count * replicas});
    }
    return requests;
  }
};

struct LiveOutcome {
  int nodes_used = 0;
  double stranded_cpu_fraction = 0.0;
  int64_t placements = 0;
  int64_t deferrals = 0;
};

// Spawns the scenario's container fleet through the live PlacementEngine:
// one deployment per shape, warm containers = the full replica demand,
// deployed in descending shape order so live first-fit walks the same item
// sequence as the offline first-fit-decreasing model.
LiveOutcome RunLive(const Scenario& scenario, const WorkerSpec& worker, int replicas,
                    int max_nodes) {
  PlatformConfig config;
  config.node_cpu = worker.cpu;
  config.node_memory_mb = worker.memory_mb;
  config.max_nodes = max_nodes;
  config.placement_policy = PlacementPolicy::kFirstFit;
  Simulation sim;
  Platform platform(&sim, config);

  std::vector<std::tuple<double, double, int>> shapes = scenario.shapes;
  std::sort(shapes.begin(), shapes.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) {
      return std::get<0>(a) > std::get<0>(b);
    }
    return std::get<1>(a) > std::get<1>(b);
  });
  int shape_index = 0;
  for (const auto& [cpu, mem, count] : shapes) {
    DeploymentSpec spec;
    spec.handle = StrCat("shape-", shape_index++);
    spec.max_scale = count * replicas;
    spec.warm_containers = count * replicas;
    spec.container.cpu_limit = cpu;
    spec.container.memory_limit_mb = mem;
    spec.container.base_memory_mb = 1.0;
    auto behavior = std::make_shared<FunctionBehavior>();
    behavior->handle = spec.handle;
    behavior->steps = {ComputeStep{0.1}};
    spec.behavior.single = std::move(behavior);
    const Status deployed = platform.Deploy(std::move(spec));
    if (!deployed.ok()) {
      std::printf("deploy failed: %s\n", deployed.ToString().c_str());
      std::exit(1);
    }
  }
  sim.Run();  // Settle the warm spawns.

  LiveOutcome outcome;
  for (const NodeStats& node : platform.placement().Snapshot()) {
    if (node.containers > 0) {
      ++outcome.nodes_used;
    }
  }
  outcome.stranded_cpu_fraction = platform.placement().StrandedCpuFraction();
  outcome.placements = platform.placement().total_placements();
  outcome.deferrals = platform.placement().deferrals();
  return outcome;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main(int argc, char** argv) {
  using namespace quilt;
  using namespace quilt::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const WorkerSpec worker{16.0, 32768.0};
  const int replicas = smoke ? 8 : 40;
  const int max_nodes = 1000;
  // Shared packing core => live and offline should agree near-exactly; the
  // tolerance absorbs rounding in the stranded-fraction denominators.
  const double tolerance = 0.05;

  PrintHeader(StrCat(
      "Resource fragmentation vs merge granularity (compose-post, 16-vCPU workers)\n"
      "offline first-fit-decreasing vs live node placement, ",
      replicas, " workflow replicas"));

  BenchJson json("fragmentation");
  json.SetConfig("smoke", smoke);
  json.SetConfig("replicas", static_cast<int64_t>(replicas));
  json.SetConfig("worker_cpu", worker.cpu);
  json.SetConfig("worker_memory_mb", worker.memory_mb);
  json.SetConfig("tolerance", tolerance);

  // Granularities: the same total demand (~11 x 0.8 vCPU per replica),
  // consolidated into ever-larger containers with raised limits.
  const std::vector<Scenario> scenarios = {
      {"no merge (11 x 0.8 vCPU)", {{0.8, 512, 11}}},
      {"pairs (5 x 1.6 + 1 x 0.8)", {{1.6, 1024, 5}, {0.8, 512, 1}}},
      {"quarters (3 x 3 vCPU)", {{3.0, 2048, 3}}},
      {"halves (2 x 4.5 vCPU)", {{4.5, 3072, 2}}},
      {"merge all (1 x 9 vCPU)", {{9.0, 6144, 1}}},
      {"merge all, padded limits (1 x 12 vCPU)", {{12.0, 8192, 1}}},
  };

  std::printf("%-42s | %8s %8s | %9s %9s | %8s %8s | %9s\n", "granularity", "wrk/off",
              "wrk/live", "strd/off", "strd/live", "unplaced", "cap-exh", "deferrals");
  bool within_tolerance = true;
  for (const Scenario& scenario : scenarios) {
    const PlacementResult offline =
        PlaceContainers(scenario.PerReplica(replicas), worker, max_nodes);
    const LiveOutcome live = RunLive(scenario, worker, replicas, max_nodes);
    const double offline_stranded = offline.StrandedCpuFraction(worker);
    const double drift = std::abs(live.stranded_cpu_fraction - offline_stranded);
    if (drift > tolerance || live.nodes_used != offline.workers_used) {
      within_tolerance = false;
    }
    std::printf("%-42s | %8d %8d | %8.1f%% %8.1f%% | %8d %8d | %9lld\n", scenario.name,
                offline.workers_used, live.nodes_used, 100.0 * offline_stranded,
                100.0 * live.stranded_cpu_fraction, offline.containers_unplaced,
                offline.containers_capacity_exhausted,
                static_cast<long long>(live.deferrals));

    Json row = Json::MakeObject();
    row["scenario"] = scenario.name;
    row["offline_workers"] = static_cast<int64_t>(offline.workers_used);
    row["live_nodes"] = static_cast<int64_t>(live.nodes_used);
    row["offline_stranded_cpu_fraction"] = offline_stranded;
    row["live_stranded_cpu_fraction"] = live.stranded_cpu_fraction;
    row["containers_unplaced"] = static_cast<int64_t>(offline.containers_unplaced);
    row["containers_capacity_exhausted"] =
        static_cast<int64_t>(offline.containers_capacity_exhausted);
    row["live_placements"] = live.placements;
    row["live_deferrals"] = live.deferrals;
    json.AddRow(std::move(row));
  }

  std::printf(
      "\nShape check (§4): small containers pack at ~100%%; as merged containers grow\n"
      "toward worker size, stranded capacity rises -- the fragmentation cost that\n"
      "motivates constraint-aware merging instead of raising the limits. Live\n"
      "placement (shared PickNode core) must reproduce the offline prediction\n"
      "within %.0f%% stranding.\n",
      100.0 * tolerance);
  if (!within_tolerance) {
    std::printf("FAIL: live placement drifted from the offline prediction.\n");
    return 1;
  }
  std::printf("OK: live stranding matches the offline prediction on every scenario.\n");

  const Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::printf("json write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}
