// Resource fragmentation vs merge granularity (§4, "Are container limits
// reasonable?").
//
// For the compose-post workflow, sweeps merge granularity from "no merging"
// (11 small containers per replica) to "merge everything into one giant
// container with proportionally raised limits", packing the resulting
// container fleet onto 16-vCPU workers. The paper's argument: simply raising
// the limits instead of constraint-aware merging turns placement into a
// wasteful bin-packing problem.
#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"
#include "src/platform/cluster.h"

namespace quilt {
namespace bench {
namespace {

struct Scenario {
  const char* name;
  // Containers per workflow replica: (cpu, count).
  std::vector<ContainerRequest> PerReplica(int replicas) const {
    std::vector<ContainerRequest> requests;
    for (const auto& [cpu, mem, count] : shapes) {
      requests.push_back({"c", cpu, mem, count * replicas});
    }
    return requests;
  }
  std::vector<std::tuple<double, double, int>> shapes;
};

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader(
      "Resource fragmentation vs merge granularity (compose-post, 16-vCPU workers)\n"
      "packing 40 workflow replicas with first-fit decreasing");

  // Granularities: the same total demand (~11 x 0.8 vCPU per replica),
  // consolidated into ever-larger containers with raised limits.
  const std::vector<Scenario> scenarios = {
      {"no merge (11 x 0.8 vCPU)", {{0.8, 512, 11}}},
      {"pairs (5 x 1.6 + 1 x 0.8)", {{1.6, 1024, 5}, {0.8, 512, 1}}},
      {"quarters (3 x 3 vCPU)", {{3.0, 2048, 3}}},
      {"halves (2 x 4.5 vCPU)", {{4.5, 3072, 2}}},
      {"merge all (1 x 9 vCPU)", {{9.0, 6144, 1}}},
      {"merge all, padded limits (1 x 12 vCPU)", {{12.0, 8192, 1}}},
  };

  const WorkerSpec worker{16.0, 32768.0};
  const int replicas = 40;

  std::printf("%-42s | %8s %8s | %10s | %10s\n", "granularity", "workers", "unplaced",
              "stranded", "cpu util");
  for (const Scenario& scenario : scenarios) {
    const PlacementResult result =
        PlaceContainers(scenario.PerReplica(replicas), worker, /*max_workers=*/1000);
    std::printf("%-42s | %8d %8d | %8.1f vC | %9.1f%%\n", scenario.name, result.workers_used,
                result.containers_unplaced, result.stranded_cpu,
                100.0 * (1.0 - result.StrandedCpuFraction(worker)));
  }
  std::printf(
      "\nShape check (§4): small containers pack at ~100%%; as merged containers grow\n"
      "toward worker size, stranded capacity rises -- the fragmentation cost that\n"
      "motivates constraint-aware merging instead of raising the limits.\n");
  return 0;
}
