// Figure 1 motivation: where does a serverless workflow's end-to-end
// latency go? (§1, §2). Assembles the profile window's traces, decomposes
// every trace into network / gateway / queueing / cold-start / compute
// segments (the five sum exactly to the measured end-to-end latency, per
// trace), and prints the breakdown for the baseline deployment next to the
// Quilt-merged one: merging exists to shrink the invocation-overhead share,
// and this harness measures that it does.
//
// Flags:
//   --smoke           short runs (CI); same pipeline, fewer requests.
//   --export <path>   write one baseline trace as Chrome trace-event JSON
//                     (chrome://tracing- or Perfetto-loadable).
//   --json <path>     write machine-readable results (name, config, rows).
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"
#include "src/tracing/chrome_trace_exporter.h"
#include "src/tracing/trace_assembler.h"

namespace quilt {
namespace bench {
namespace {

struct Phase {
  WorkflowLatencySummary summary;
  int64_t traces = 0;
  int64_t exact = 0;  // Traces whose segment sum equals their e2e latency.
};

// Profiles `target` under a closed loop and summarizes the window. When
// `export_path` is non-empty, the first complete ok multi-span trace is
// written there as Chrome trace-event JSON.
Phase ProfileAndDecompose(Env& env, const std::string& target, SimDuration duration,
                          SimDuration warmup, const std::string& export_path) {
  Phase phase;
  env.controller.StartProfiling();
  RunClosedLoop(env, target, /*connections=*/1, duration, warmup);
  env.controller.StopProfiling();

  const std::vector<Trace> traces = env.controller.CollectTraces();
  bool exported = export_path.empty();
  for (const Trace& trace : traces) {
    if (!trace.complete() || trace.workflow() != target) {
      continue;
    }
    Result<LatencyBreakdown> breakdown = DecomposeTrace(trace);
    if (!breakdown.ok()) {
      continue;
    }
    ++phase.traces;
    if (breakdown->total() == breakdown->end_to_end) {
      ++phase.exact;
    }
    if (!exported && trace.root().status == SpanStatus::kOk && trace.spans.size() > 1) {
      const Status written = WriteChromeTraceFile(trace, export_path);
      if (!written.ok()) {
        std::printf("!! export failed: %s\n", written.ToString().c_str());
      } else {
        std::printf("exported trace %lld (%zu spans) -> %s\n",
                    static_cast<long long>(trace.trace_id), trace.spans.size(),
                    export_path.c_str());
      }
      exported = true;
    }
  }

  Result<WorkflowLatencySummary> summary = env.controller.SummarizeWorkflowLatency(target);
  if (summary.ok()) {
    phase.summary = std::move(summary).value();
  } else {
    std::printf("!! summarize failed: %s\n", summary.status().ToString().c_str());
  }
  return phase;
}

void PrintSegmentRow(const char* name, const SegmentPercentiles& base,
                     const SegmentPercentiles& quilt) {
  std::printf("  %-11s %10.3f ms %5.1f%% | %10.3f ms %5.1f%%\n", name, base.mean / 1e6,
              100.0 * base.share, quilt.mean / 1e6, 100.0 * quilt.share);
}

Json SummaryRow(const std::string& app, const std::string& series,
                const WorkflowLatencySummary& s, int64_t exact_traces) {
  Json row = Json::MakeObject();
  row["app"] = app;
  row["series"] = series;
  row["traces"] = s.traces;
  row["exact_sum_traces"] = exact_traces;
  row["e2e_mean_ms"] = s.end_to_end.mean / 1e6;
  row["e2e_p50_ms"] = static_cast<double>(s.end_to_end.p50) / 1e6;
  row["e2e_p99_ms"] = static_cast<double>(s.end_to_end.p99) / 1e6;
  row["network_share"] = s.network.share;
  row["gateway_share"] = s.gateway.share;
  row["queueing_share"] = s.queueing.share;
  row["cold_start_share"] = s.cold_start.share;
  row["compute_share"] = s.compute.share;
  row["overhead_share"] = s.overhead_share;
  return row;
}

bool RunWorkflow(const WorkflowApp& app, bool smoke, const std::string& export_path,
                 BenchJson& json) {
  const SimDuration duration = smoke ? Seconds(3) : Seconds(20);
  const SimDuration warmup = smoke ? Seconds(1) : Seconds(5);

  Env env;
  const Status registered = env.controller.RegisterWorkflow(app);
  if (!registered.ok()) {
    std::printf("!! %s: %s\n", app.name.c_str(), registered.ToString().c_str());
    return false;
  }

  const Phase baseline =
      ProfileAndDecompose(env, app.root_handle, duration, warmup, export_path);

  // Quilt pipeline on the profile just gathered, then re-profile merged.
  Result<MergeSolution> solution = env.controller.OptimizeWorkflow(app.root_handle);
  if (!solution.ok()) {
    std::printf("!! %s: decision failed: %s\n", app.name.c_str(),
                solution.status().ToString().c_str());
    return false;
  }
  const Phase merged = ProfileAndDecompose(env, app.root_handle, duration, warmup, "");

  const WorkflowLatencySummary& b = baseline.summary;
  const WorkflowLatencySummary& q = merged.summary;
  std::printf("\n%s (%d functions -> %d groups)\n", app.name.c_str(),
              static_cast<int>(app.functions.size()), solution->num_groups());
  std::printf("  traces: baseline %lld (exact-sum %lld), quilt %lld (exact-sum %lld)\n",
              static_cast<long long>(baseline.traces), static_cast<long long>(baseline.exact),
              static_cast<long long>(merged.traces), static_cast<long long>(merged.exact));
  std::printf("  %-11s %13s %6s | %13s %6s\n", "segment", "baseline", "share", "quilt",
              "share");
  PrintSegmentRow("network", b.network, q.network);
  PrintSegmentRow("gateway", b.gateway, q.gateway);
  PrintSegmentRow("queueing", b.queueing, q.queueing);
  PrintSegmentRow("cold-start", b.cold_start, q.cold_start);
  PrintSegmentRow("compute", b.compute, q.compute);
  std::printf("  %-11s %10.3f ms        | %10.3f ms\n", "end-to-end", b.end_to_end.mean / 1e6,
              q.end_to_end.mean / 1e6);
  std::printf("  p50 / p99:  %.3f / %.3f ms   | %.3f / %.3f ms\n",
              static_cast<double>(b.end_to_end.p50) / 1e6,
              static_cast<double>(b.end_to_end.p99) / 1e6,
              static_cast<double>(q.end_to_end.p50) / 1e6,
              static_cast<double>(q.end_to_end.p99) / 1e6);
  std::printf("  invocation-overhead share: %.1f%% -> %.1f%%\n", 100.0 * b.overhead_share,
              100.0 * q.overhead_share);

  json.AddRow(SummaryRow(app.name, "baseline", b, baseline.exact));
  json.AddRow(SummaryRow(app.name, "quilt", q, merged.exact));

  const bool sums_exact = baseline.traces > 0 && baseline.exact == baseline.traces &&
                          merged.traces > 0 && merged.exact == merged.traces;
  const bool overhead_shrank = q.overhead_share < b.overhead_share;
  if (!sums_exact) {
    std::printf("!! %s: segment sums did not match end-to-end latency\n", app.name.c_str());
  }
  if (!overhead_shrank) {
    std::printf("!! %s: overhead share did not shrink after merging\n", app.name.c_str());
  }
  return sums_exact && overhead_shrank;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main(int argc, char** argv) {
  using namespace quilt;
  using namespace quilt::bench;

  bool smoke = false;
  std::string export_path;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      export_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  PrintHeader(
      "Figure 1: end-to-end latency decomposition, baseline vs Quilt\n"
      "(per-trace segments sum exactly to measured end-to-end latency)");

  std::vector<WorkflowApp> apps;
  apps.push_back(ComposePost(/*async_fanout=*/false));
  if (!smoke) {
    apps.push_back(PageService(/*async_fanout=*/false));
    apps.push_back(SearchHandler());
  }

  BenchJson json("fig1_latency_breakdown");
  json.SetConfig("smoke", smoke);
  json.SetConfig("apps", static_cast<int64_t>(apps.size()));

  bool ok = true;
  bool first = true;
  for (const WorkflowApp& app : apps) {
    ok = RunWorkflow(app, smoke, first ? export_path : "", json) && ok;
    first = false;
  }
  const Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::printf("!! --json: %s\n", written.ToString().c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
