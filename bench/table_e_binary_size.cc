// Appendix E: function binary sizes.
//
// For each workflow: the number of functions, the min/avg/max size of the
// individual (baseline) binaries, the size of Quilt's merged binary, and the
// percentage change of the merged binary vs the *sum* of the individual
// binaries. The merged binary dedupes the language runtime and shared
// dependency code, so it is far smaller than the sum (paper: 3.4%-86.7%
// smaller, with one small outlier).
#include <algorithm>

#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"
#include "src/quiltc/compile_service.h"

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader("Appendix E: baseline vs merged binary sizes (MB)");
  std::printf("%-26s %4s | %8s %8s %8s %10s | %10s | %8s\n", "workflow", "fns", "min",
              "avg", "max", "sum", "quilt", "saved");

  CompileService service;
  const std::vector<WorkflowApp> workflows = {
      ComposePost(true),     FollowWithUname(true), ReadHomeTimeline(),
      ComposeReview(true),   PageService(true),     ReadUserReview(),
      SearchHandler(),       ReservationHandler(),  NearbyCinema(),
  };
  for (const WorkflowApp& app : workflows) {
    Result<CallGraph> graph = app.ReferenceGraph();
    if (!graph.ok()) {
      continue;
    }
    const auto sources = app.Sources();
    int64_t min_size = INT64_MAX;
    int64_t max_size = 0;
    int64_t sum = 0;
    for (const auto& [handle, source] : sources) {
      Result<MergedArtifact> single = service.BuildSingleFunction(source);
      if (!single.ok()) {
        continue;
      }
      min_size = std::min(min_size, single->image.size_bytes);
      max_size = std::max(max_size, single->image.size_bytes);
      sum += single->image.size_bytes;
    }
    Result<MergedArtifact> merged =
        service.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources());
    if (!merged.ok()) {
      std::printf("!! %s: %s\n", app.name.c_str(), merged.status().ToString().c_str());
      continue;
    }
    const double mb = 1024.0 * 1024.0;
    const double saved = 100.0 * (1.0 - static_cast<double>(merged->image.size_bytes) /
                                            static_cast<double>(sum));
    std::printf("%-26s %4zu | %8.2f %8.2f %8.2f %10.2f | %10.2f | %7.1f%%\n",
                app.name.c_str(), sources.size(), min_size / mb,
                sum / mb / static_cast<double>(sources.size()), max_size / mb, sum / mb,
                merged->image.size_bytes / mb, saved);
  }
  std::printf(
      "\nShape check: merged binaries carry each function's user code once plus ONE copy\n"
      "of the runtime/serde/HTTP stack, so savings grow with workflow size.\n");
  return 0;
}
