// Ablation: the Gurobi-style "MIP gap" relaxation (§4.3).
//
// The paper stops the Phase-2 solver once a solution within a chosen
// percentage of optimal is found. This harness sweeps the gap and reports
// decision time vs solution quality on random rDAGs.
#include <algorithm>
#include <chrono>

#include "bench/bench_util.h"
#include "src/graph/random_dag.h"
#include "src/partition/heuristic_solver.h"
#include "src/partition/scorers.h"

namespace quilt {
namespace bench {
namespace {

MergeProblem ProblemFor(const CallGraph& graph) {
  double total_mem = 0.0;
  double max_mem = 0.0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    total_mem += graph.node(id).memory;
    max_mem = std::max(max_mem, graph.node(id).memory);
  }
  return MergeProblem{&graph, 1e9, std::max(total_mem * 0.5, max_mem * 2.0)};
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader("Ablation: MIP-gap relaxation (DIH decision, 26-node random rDAGs)");
  std::printf("%8s | %14s | %16s | %12s\n", "gap", "mean cost", "cost vs exact", "mean ms");

  const std::vector<double> gaps = {0.0, 0.05, 0.2, 0.5};
  const int trials = 12;

  // Pre-generate graphs so every gap sees the same instances.
  Rng master(23);
  std::vector<CallGraph> graphs;
  for (int trial = 0; trial < trials; ++trial) {
    RandomDagOptions options;
    options.num_nodes = 26;
    graphs.push_back(GenerateRandomRdag(options, master));
  }

  double exact_cost = 0.0;
  for (double gap : gaps) {
    double cost_sum = 0.0;
    double ms_sum = 0.0;
    for (const CallGraph& graph : graphs) {
      MergeProblem problem = ProblemFor(graph);
      DownstreamImpactScorer dih;
      HeuristicSolver solver(dih);
      SolverOptions options;
      options.pool_size = 8;
      options.mip_gap = gap;
      const auto start = std::chrono::steady_clock::now();
      Result<MergeSolution> solution = solver.Solve(problem, options);
      ms_sum += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          start)
                    .count();
      cost_sum += solution.ok() ? solution->cross_cost : graph.TotalEdgeWeight();
    }
    if (gap == 0.0) {
      exact_cost = cost_sum;
    }
    std::printf("%7.0f%% | %14.1f | %15.2f%% | %12.1f\n", gap * 100.0, cost_sum / trials,
                exact_cost > 0 ? 100.0 * (cost_sum / exact_cost - 1.0) : 0.0,
                ms_sum / trials);
  }
  std::printf(
      "\nShape check: at benchmark scale the Phase-2 ILPs are already cheap, so the\n"
      "relaxation costs nothing and saves little -- the knob exists for the large\n"
      "candidate sets of Appendix C.4, where GRASP defaults to a 5%% gap.\n");
  return 0;
}
