// Elastic node-pool autoscaler vs a peak-sized static fleet (§4.14) under
// phased load: peak -> medium -> trough, all in one simulated run.
//
// The static fleet must be provisioned for the peak phase, so every node it
// paid for during the medium and trough phases bills mostly idle. The
// autoscaler starts from a one-node floor, ramps up during the (unmeasured)
// warmup at peak rate, then cordons, drains and retires surplus nodes as the
// rate falls -- retired nodes stop emitting node samples, so they stop
// billing. The figure compares the two fleets' infrastructure dollars and
// per-phase tail latency.
//
// Checks (exit non-zero on violation):
//   * savings: the elastic fleet cuts paid-but-idle node dollars by at least
//     `idle_cut_floor` (30%) over the whole run;
//   * latency: each phase's elastic p99 stays within `p99_tolerance` (5%) of
//     the static fleet's -- the savings are not bought with tail latency;
//   * determinism: the elastic run's full observable state (autoscale event
//     log, node-sample stream, per-phase latency rows) is byte-identical at
//     decision_threads 1, 2 and 8.
//
// Flags:
//   --smoke           shorter phases (CI); same checks.
//   --json <path>     write machine-readable results (name, config, rows).
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "src/platform/autoscaler.h"

namespace quilt {
namespace bench {
namespace {

constexpr char kRoot[] = "scale-root";
constexpr char kLeaf[] = "scale-leaf";

constexpr double kNodeCpu = 4.0;
constexpr double kNodeMemoryMb = 1024.0;
constexpr int kStaticNodes = 6;  // Peak-sized static fleet.

// Two functions so the decision engine has a real (if small) problem when
// the determinism check sweeps decision_threads.
WorkflowApp ScaleApp() {
  WorkflowApp app;
  app.name = "autoscale";
  app.root_handle = kRoot;

  AppFunctionSpec root;
  root.handle = kRoot;
  root.request_memory_mb = 20.0;
  root.steps = {ComputeStep{2.0}, CallStep{{{kLeaf, 1, false}}, false}};
  app.functions.push_back(root);

  AppFunctionSpec leaf;
  leaf.handle = kLeaf;
  leaf.request_memory_mb = 20.0;
  leaf.steps = {ComputeStep{4.0}};
  app.functions.push_back(leaf);
  return app;
}

struct PhaseRow {
  std::string name;
  double rps = 0.0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t p50 = 0;
  int64_t p99 = 0;
};

struct ScenarioResult {
  bool ok = false;
  std::vector<PhaseRow> phases;
  int64_t infra_nanos = 0;       // Paid node uptime, whole run.
  int64_t infra_idle_nanos = 0;  // ... of which the CPUs sat idle.
  int64_t provisioned = 0;       // Elastic only: nodes booted / retired.
  int64_t retired = 0;
  std::string canonical;  // Byte-comparable observable state (elastic).
};

ScenarioResult RunScenario(bool elastic, int decision_threads, bool smoke) {
  ScenarioResult result;

  ControllerOptions options;
  options.decision_threads = decision_threads;
  // Same container-scaling ceiling for both fleets: 6 replicas per function
  // is 12 containers at 2 vCPU each -- exactly the 6-node static fleet's
  // capacity, so "peak-sized" is literal and the fleets differ only in how
  // they pay for the medium and trough phases.
  options.max_scale = kStaticNodes;
  if (elastic) {
    options.autoscaler.enabled = true;
    options.autoscaler.min_nodes = 1;
    options.autoscaler.max_nodes = kStaticNodes;
    options.autoscaler.warm_pool = 1;
    options.autoscaler.node_cpu = kNodeCpu;
    options.autoscaler.node_memory_mb = kNodeMemoryMb;
    options.autoscaler.evaluate_interval = Milliseconds(250);
    options.autoscaler.scale_up_ticks = 1;
    options.autoscaler.provisioning_delay = Seconds(1);
    options.autoscaler.scale_down_idle_ticks = 4;  // ~1 s of surplus per shed.
  } else {
    options.max_nodes = kStaticNodes;
    options.node_cpu = kNodeCpu;
    options.node_memory_mb = kNodeMemoryMb;
  }
  PlatformConfig config;
  config.pricing = PricingProfile::PerMillisecond();
  Env env(options, config);

  const Status registered = env.controller.RegisterWorkflow(ScaleApp());
  if (!registered.ok()) {
    std::printf("FAIL: register: %s\n", registered.ToString().c_str());
    return result;
  }
  // The monitor must run for the whole phased load: node samples are both
  // the billing evidence (InfraCostFromNodes) and the determinism log.
  env.controller.StartProfiling();

  OpenLoopGenerator generator;
  OpenLoopGenerator::PhasedOptions phased;
  phased.poisson = true;
  phased.seed = 17;
  // Warmup runs at the first phase's rate: the elastic fleet ramps to peak
  // capacity before measurement starts, so scale-up cold nodes are not
  // billed against the peak phase's tail.
  phased.warmup = Seconds(10);
  const SimDuration phase_len = smoke ? Seconds(12) : Seconds(30);
  phased.phases = {{"peak", 400.0, phase_len, Json::MakeObject(), nullptr},
                   {"medium", 90.0, phase_len, Json::MakeObject(), nullptr},
                   {"trough", 15.0, phase_len, Json::MakeObject(), nullptr}};
  const std::vector<PhaseResult> load = generator.RunPhased(&env.sim, &env.platform, kRoot, phased);
  env.controller.StopProfiling();

  // Engage the decision engine so decision_threads exercises a real solve.
  const Result<MergeSolution> solution = env.controller.OptimizeWorkflow(kRoot);
  if (!solution.ok()) {
    std::printf("FAIL: optimize: %s\n", solution.status().ToString().c_str());
    return result;
  }

  for (size_t i = 0; i < load.size(); ++i) {
    PhaseRow row;
    row.name = load[i].name;
    row.rps = phased.phases[i].rps;
    row.completed = load[i].result.completed;
    row.failed = load[i].result.failed;
    row.p50 = load[i].result.latency.Median();
    row.p99 = load[i].result.latency.P99();
    result.phases.push_back(row);
  }

  // Everything observability flows through the controller's metrics view.
  MetricsView metrics = env.controller.metrics();
  const QuiltController::CostReport report = metrics.CollectCostReport();
  result.infra_nanos = report.infra_nanos;
  result.infra_idle_nanos = report.infra_idle_nanos;

  std::string canonical;
  for (const PhaseRow& row : result.phases) {
    StrAppend(&canonical, row.name, " completed=", row.completed, " failed=", row.failed,
              " p50=", row.p50, " p99=", row.p99, "\n");
  }
  for (const NodeSample& sample : metrics.node_samples()) {
    StrAppend(&canonical, NodeSampleLine(sample), "\n");
  }
  if (const NodeAutoscaler* autoscaler = env.platform.autoscaler()) {
    result.provisioned = autoscaler->provisioned_total();
    result.retired = autoscaler->retired_total();
    for (const AutoscaleEvent& event : autoscaler->events()) {
      StrAppend(&canonical, AutoscaleEventLine(event), "\n");
    }
  }
  result.canonical = std::move(canonical);
  result.ok = true;
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main(int argc, char** argv) {
  using namespace quilt;
  using namespace quilt::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const double idle_cut_floor = 0.30;
  const double p99_tolerance = 0.05;

  PrintHeader(StrCat(
      "Elastic autoscaler vs a peak-sized static fleet (", kStaticNodes,
      " nodes) under phased\nload: paid-but-idle node dollars and per-phase p99"));

  BenchJson json("fig_autoscale");
  json.SetConfig("smoke", smoke);
  json.SetConfig("static_nodes", static_cast<int64_t>(kStaticNodes));
  json.SetConfig("idle_cut_floor", idle_cut_floor);
  json.SetConfig("p99_tolerance", p99_tolerance);

  const ScenarioResult fixed = RunScenario(/*elastic=*/false, /*decision_threads=*/1, smoke);
  const ScenarioResult auto1 = RunScenario(/*elastic=*/true, /*decision_threads=*/1, smoke);
  if (!fixed.ok || !auto1.ok) {
    return 1;
  }

  std::printf("%-8s | %6s | %-7s %9s %9s %10s %10s\n", "phase", "rps", "fleet", "requests",
              "failed", "p50", "p99");
  bool p99_ok = true;
  for (size_t i = 0; i < fixed.phases.size(); ++i) {
    const PhaseRow& s = fixed.phases[i];
    const PhaseRow& a = auto1.phases[i];
    std::printf("%-8s | %6s | %-7s %9lld %9lld %10s %10s\n", s.name.c_str(),
                FormatDouble(s.rps, 0).c_str(), "static", static_cast<long long>(s.completed),
                static_cast<long long>(s.failed), FormatDuration(s.p50).c_str(),
                FormatDuration(s.p99).c_str());
    std::printf("%-8s | %6s | %-7s %9lld %9lld %10s %10s\n", "", "", "elastic",
                static_cast<long long>(a.completed), static_cast<long long>(a.failed),
                FormatDuration(a.p50).c_str(), FormatDuration(a.p99).c_str());
    const bool within =
        static_cast<double>(a.p99) <= static_cast<double>(s.p99) * (1.0 + p99_tolerance);
    p99_ok = p99_ok && within && a.failed == 0;

    Json row = Json::MakeObject();
    row["phase"] = s.name;
    row["rps"] = s.rps;
    row["static_completed"] = s.completed;
    row["static_p99_ns"] = s.p99;
    row["elastic_completed"] = a.completed;
    row["elastic_p99_ns"] = a.p99;
    row["p99_within_tolerance"] = within;
    json.AddRow(std::move(row));
  }

  const double idle_cut =
      fixed.infra_idle_nanos > 0
          ? 1.0 - static_cast<double>(auto1.infra_idle_nanos) /
                      static_cast<double>(fixed.infra_idle_nanos)
          : 0.0;
  std::printf("\n%-8s %14s %14s %12s\n", "fleet", "node $", "idle $", "idle share");
  std::printf("%-8s %14s %14s %12s\n", "static", FormatNanodollars(fixed.infra_nanos).c_str(),
              FormatNanodollars(fixed.infra_idle_nanos).c_str(),
              FormatDouble(fixed.infra_nanos > 0
                               ? static_cast<double>(fixed.infra_idle_nanos) /
                                     static_cast<double>(fixed.infra_nanos)
                               : 0.0,
                           3)
                  .c_str());
  std::printf("%-8s %14s %14s %12s   (provisioned %lld, retired %lld)\n", "elastic",
              FormatNanodollars(auto1.infra_nanos).c_str(),
              FormatNanodollars(auto1.infra_idle_nanos).c_str(),
              FormatDouble(auto1.infra_nanos > 0
                               ? static_cast<double>(auto1.infra_idle_nanos) /
                                     static_cast<double>(auto1.infra_nanos)
                               : 0.0,
                           3)
                  .c_str(),
              static_cast<long long>(auto1.provisioned), static_cast<long long>(auto1.retired));
  std::printf("idle-dollar cut: %s%% (floor %s%%)\n", FormatDouble(100.0 * idle_cut, 1).c_str(),
              FormatDouble(100.0 * idle_cut_floor, 0).c_str());

  json.SetConfig("static_infra_nanos", fixed.infra_nanos);
  json.SetConfig("static_idle_nanos", fixed.infra_idle_nanos);
  json.SetConfig("elastic_infra_nanos", auto1.infra_nanos);
  json.SetConfig("elastic_idle_nanos", auto1.infra_idle_nanos);
  json.SetConfig("idle_cut", idle_cut);

  // Determinism: the elastic run's observable state must not depend on how
  // many threads the decision engine uses.
  if (std::getenv("FIG_AUTOSCALE_EVENTS") != nullptr) {
    std::printf("%s", auto1.canonical.c_str());
  }
  const ScenarioResult auto2 = RunScenario(/*elastic=*/true, /*decision_threads=*/2, smoke);
  const ScenarioResult auto8 = RunScenario(/*elastic=*/true, /*decision_threads=*/8, smoke);
  if (!auto2.ok || !auto8.ok) {
    return 1;
  }
  const bool deterministic =
      auto1.canonical == auto2.canonical && auto1.canonical == auto8.canonical;
  json.SetConfig("deterministic_across_threads", deterministic);
  std::printf("determinism across decision_threads {1,2,8}: %s\n",
              deterministic ? "byte-identical" : "DIVERGED");

  bool failed = false;
  if (!deterministic) {
    std::printf("FAIL: elastic run diverged across decision_threads.\n");
    failed = true;
  }
  if (!p99_ok) {
    std::printf("FAIL: elastic p99 exceeded the static fleet's by more than %.0f%% "
                "(or requests failed).\n",
                100.0 * p99_tolerance);
    failed = true;
  }
  if (idle_cut < idle_cut_floor) {
    std::printf("FAIL: idle-dollar cut %.1f%% is below the %.0f%% floor.\n", 100.0 * idle_cut,
                100.0 * idle_cut_floor);
    failed = true;
  }
  if (failed) {
    return 1;
  }
  std::printf("OK: the autoscaler cuts idle node dollars at equal-or-better tail latency.\n");

  const Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::printf("json write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}
