// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (§7): it builds the workloads, runs the simulated platform, and
// prints the same rows/series the paper reports. Absolute numbers differ
// from the authors' testbed (ours is a simulator); the *shape* -- who wins,
// by what factor, where the crossovers are -- is the reproduction target.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/common/strings.h"
#include "src/core/quilt_controller.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace bench {

// One experiment environment: fresh simulation + platform + controller.
struct Env {
  Simulation sim;
  Platform platform;
  QuiltController controller;

  explicit Env(ControllerOptions options = {}, PlatformConfig config = {})
      : platform(&sim, config), controller(&sim, &platform, options) {}
};

inline LoadResult RunClosedLoop(Env& env, const std::string& target, int connections = 1,
                                SimDuration duration = Seconds(30),
                                SimDuration warmup = Seconds(5)) {
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.connections = connections;
  options.warmup = warmup;
  options.duration = duration;
  return generator.Run(&env.sim, &env.platform, target, options);
}

inline LoadResult RunOpenLoop(Env& env, const std::string& target, double rps,
                              SimDuration duration = Seconds(20),
                              SimDuration warmup = Seconds(5)) {
  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = rps;
  options.warmup = warmup;
  options.duration = duration;
  return generator.Run(&env.sim, &env.platform, target, options);
}

// Registers a workflow and swaps in Quilt's merged deployment decided from
// the app's reference call graph (profiling-free path used by benches that
// pin the grouping to "merge everything").
inline Status DeployQuiltFullMerge(Env& env, const WorkflowApp& app) {
  QUILT_RETURN_IF_ERROR(env.controller.RegisterWorkflow(app));
  Result<CallGraph> graph = app.ReferenceGraph();
  if (!graph.ok()) {
    return graph.status();
  }
  return env.controller.DeploySolutionDirect(app, FullMergeSolution(*graph));
}

// Machine-readable result emitter backing the shared `--json <path>` flag:
// the bench records its name, configuration and metric rows, and WriteTo
// dumps one JSON document ({"benchmark", "config", "rows"}) that CI uploads
// as a BENCH_*.json artifact and downstream tooling can diff across runs.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : doc_(Json::MakeObject()) {
    doc_["benchmark"] = std::move(name);
    doc_["config"] = Json::MakeObject();
    doc_["rows"] = Json::MakeArray();
  }

  void SetConfig(const std::string& key, Json value) {
    doc_["config"][key] = std::move(value);
  }

  // One metric row: a flat object, e.g. {"series": "...", "p99_ms": 1.25}.
  void AddRow(Json row) { doc_["rows"].Append(std::move(row)); }

  // Writes the document. A no-op (Ok) when `path` is empty, so benches can
  // call it unconditionally.
  Status WriteTo(const std::string& path) const {
    if (path.empty()) {
      return Status::Ok();
    }
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      return UnavailableError(StrCat("cannot open '", path, "' for writing"));
    }
    const std::string text = doc_.Dump();
    const size_t written = std::fwrite(text.data(), 1, text.size(), file);
    std::fclose(file);
    if (written != text.size()) {
      return UnavailableError(StrCat("short write to '", path, "'"));
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), text.size());
    return Status::Ok();
  }

 private:
  Json doc_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline double ImprovementPct(int64_t baseline, int64_t improved) {
  if (baseline <= 0) {
    return 0.0;
  }
  return 100.0 * (1.0 - static_cast<double>(improved) / static_cast<double>(baseline));
}

}  // namespace bench
}  // namespace quilt

#endif  // BENCH_BENCH_UTIL_H_
