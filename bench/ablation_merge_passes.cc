// Ablation: the optimization passes of the merge pipeline (§5.2, §5.6).
//
// Toggles DelayHTTP (+Implib wrapping), DCE/debloating, and conditional
// invocations on the compose-post merge and reports their effect on the
// binary image, the shared-library loading profile, and the measured
// cold-start latency of the merged function.
#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"
#include "src/quiltc/compile_service.h"

namespace quilt {
namespace bench {
namespace {

struct Variant {
  const char* name;
  QuiltcOptions options;
};

// Measures the first (cold) invocation latency of the merged deployment.
SimDuration MeasureColdStart(const QuiltcOptions& options) {
  ControllerOptions controller_options;
  controller_options.quiltc = options;
  Env env(controller_options);
  const WorkflowApp app = ComposePost(false);
  if (!env.controller.RegisterWorkflow(app).ok()) {
    return -1;
  }
  Result<CallGraph> graph = app.ReferenceGraph();
  if (!graph.ok() ||
      !env.controller.DeploySolutionDirect(app, FullMergeSolution(*graph)).ok()) {
    return -1;
  }
  SimTime done = -1;
  const SimTime start = env.sim.now();
  env.platform.Invoke({.caller = kClientCaller,
                       .callee = app.root_handle,
                       .parent = {},
                       .payload = Json::MakeObject(),
                       .async = false,
                       .done = [&](Result<Json> r) { done = r.ok() ? env.sim.now() : -1; }});
  env.sim.Run();
  return done >= 0 ? done - start : -1;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader("Ablation: merge-pipeline passes on compose-post (11 functions)");

  std::vector<Variant> variants;
  {
    Variant all{"all passes", {}};
    variants.push_back(all);
    Variant no_delay{"no DelayHTTP/Implib", {}};
    no_delay.options.delay_http = false;
    no_delay.options.implib_wrap = false;
    variants.push_back(no_delay);
    Variant no_dce{"no DCE/debloat", {}};
    no_dce.options.dce = false;
    variants.push_back(no_dce);
    Variant no_conditional{"no conditional inv.", {}};
    no_conditional.options.conditional_invocations = false;
    variants.push_back(no_conditional);
  }

  const WorkflowApp app = ComposePost(false);
  Result<CallGraph> graph = app.ReferenceGraph();
  if (!graph.ok()) {
    std::printf("graph error: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  std::printf("%-22s | %10s | %6s %6s | %12s\n", "variant", "binary", "eager", "lazy",
              "cold start");
  for (const Variant& variant : variants) {
    CompileServiceOptions service_options;
    service_options.quiltc = variant.options;
    CompileService service(service_options);
    Result<MergedArtifact> artifact =
        service.MergeGroup(*graph, FullMergeSolution(*graph).groups[0], app.Sources());
    if (!artifact.ok()) {
      std::printf("%-22s | merge failed: %s\n", variant.name,
                  artifact.status().ToString().c_str());
      continue;
    }
    const SimDuration cold = MeasureColdStart(variant.options);
    std::printf("%-22s | %10s | %6d %6d | %12s\n", variant.name,
                FormatBytes(artifact->image.size_bytes).c_str(), artifact->image.eager_libs,
                artifact->image.lazy_libs, FormatDuration(cold).c_str());
  }
  std::printf(
      "\nShape check: DelayHTTP/Implib move the ~41-library HTTP closure off the\n"
      "cold-start path; disabling DCE leaves dead scaffolds in the binary; disabling\n"
      "conditional invocations lets DCE strip the HTTP stack entirely (smallest,\n"
      "fastest cold start) at the cost of crashing on fan-out beyond the profile.\n");
  return 0;
}
