// Figures 7a/7b: median latency and throughput under varying offered load
// for the compose-post workflow (sync and async), comparing:
//   - Baseline: one container image per function (10 containers each);
//   - CM: container merge (WiseFuse-style internal API gateway) at the
//     standard 128 MB limit and with doubled memory (256 MB);
//   - Quilt: the whole workflow merged into one process.
//
// §7.3.2 methodology: fake DB calls, wrk2 constant-throughput load, every
// system gets the same container budget (110 containers of 2 vCPU).
// Expected shape: baseline saturates first and its median latency *drops*
// as load rises before saturation (Fission routing quirk); CM improves
// latency but OOM-kills at high load with 128 MB (the 256 MB variant
// extends it); Quilt improves latency the most and achieves several times
// the baseline's throughput without OOM.
// High-rps mode (--high-rps): pushes the same compose-post setups to multi-
// thousand offered rps, where the simulator's own event loop is the
// bottleneck being exercised (millions of events per point). Reports
// simulated-event throughput next to the workload metrics; --smoke shrinks
// it to one point per system for CI, and --json emits a BENCH_*.json
// artifact in either mode.
#include <chrono>
#include <cstring>

#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"

namespace quilt {
namespace bench {
namespace {

struct Point {
  double offered = 0.0;
  double achieved = 0.0;
  int64_t median = 0;
  double failure_rate = 0.0;
  int64_t oom_kills = 0;
  int64_t sim_events = 0;
  double wall_seconds = 0.0;
};

enum class System { kBaseline, kCm128, kCm256, kQuilt };

const char* SystemName(System system) {
  switch (system) {
    case System::kBaseline:
      return "baseline";
    case System::kCm128:
      return "CM (128MB)";
    case System::kCm256:
      return "CM (256MB)";
    case System::kQuilt:
      return "quilt";
  }
  return "?";
}

Point RunPoint(const WorkflowApp& app, System system, double rps,
               SimDuration duration = Seconds(10), SimDuration warmup = Seconds(3)) {
  Env env;
  Status status = env.controller.RegisterWorkflow(app);
  if (!status.ok()) {
    std::printf("!! register: %s\n", status.ToString().c_str());
    return {};
  }
  switch (system) {
    case System::kBaseline:
      break;
    case System::kCm128:
      status = env.controller.DeployContainerMerge(app, 128.0);
      break;
    case System::kCm256:
      status = env.controller.DeployContainerMerge(app, 256.0);
      break;
    case System::kQuilt: {
      Result<CallGraph> graph = app.ReferenceGraph();
      if (graph.ok()) {
        status = env.controller.DeploySolutionDirect(app, FullMergeSolution(*graph));
      } else {
        status = graph.status();
      }
      break;
    }
  }
  if (!status.ok()) {
    std::printf("!! deploy %s: %s\n", SystemName(system), status.ToString().c_str());
    return {};
  }

  const auto start = std::chrono::steady_clock::now();
  const LoadResult load = RunOpenLoop(env, app.root_handle, rps, duration, warmup);
  const auto stop = std::chrono::steady_clock::now();
  Point point;
  point.offered = rps;
  point.achieved = load.AchievedRps();
  point.median = load.latency.Median();
  point.failure_rate = load.FailureRate();
  const DeploymentStats* stats = env.platform.StatsFor(app.root_handle);
  point.oom_kills = stats != nullptr ? stats->oom_kills : 0;
  point.sim_events = env.sim.events_processed();
  point.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return point;
}

void RunVariant(bool async_fanout) {
  const WorkflowApp app = ComposePost(async_fanout);
  PrintHeader(StrCat("Figure 7a/7b (", async_fanout ? "async" : "sync",
                     "): compose-post latency & throughput vs offered load"));
  const std::vector<double> rates = {25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600};

  for (System system :
       {System::kBaseline, System::kCm128, System::kCm256, System::kQuilt}) {
    std::printf("\n-- %s --\n", SystemName(system));
    std::printf("%10s %10s %12s %8s %6s\n", "offered", "achieved", "median", "fail%", "oom");
    double peak = 0.0;
    for (double rps : rates) {
      const Point point = RunPoint(app, system, rps);
      peak = std::max(peak, point.achieved);
      std::printf("%10.0f %10.1f %12s %7.2f%% %6lld\n", point.offered, point.achieved,
                  FormatDuration(point.median).c_str(), 100.0 * point.failure_rate,
                  static_cast<long long>(point.oom_kills));
    }
    std::printf("peak throughput: %.1f rps\n", peak);
  }
}

// --high-rps: offered load in the thousands, where each point runs millions
// of simulated events and the event core's throughput dominates wall time.
// Baseline and Quilt full-merge only (the CM variants add nothing at this
// load -- they OOM long before).
int RunHighRps(bool smoke, const std::string& json_path) {
  const WorkflowApp app = ComposePost(/*async_fanout=*/false);
  PrintHeader(StrCat("Figure 7 high-rps mode (", smoke ? "smoke" : "full",
                     "): compose-post at multi-thousand offered rps"));
  const std::vector<double> rates =
      smoke ? std::vector<double>{2000} : std::vector<double>{2000, 8000, 32000};
  const SimDuration duration = smoke ? Seconds(5) : Seconds(10);
  const SimDuration warmup = smoke ? Seconds(2) : Seconds(3);

  BenchJson json("fig7_high_rps");
  json.SetConfig("smoke", smoke);
  json.SetConfig("duration_s", ToSeconds(duration));

  bool ok = true;
  for (System system : {System::kBaseline, System::kQuilt}) {
    std::printf("\n-- %s --\n", SystemName(system));
    std::printf("%10s %10s %12s %8s %14s %12s\n", "offered", "achieved", "median", "fail%",
                "sim events", "Mevents/s");
    for (double rps : rates) {
      const Point point = RunPoint(app, system, rps, duration, warmup);
      const double events_per_sec =
          point.wall_seconds > 0.0 ? static_cast<double>(point.sim_events) / point.wall_seconds
                                   : 0.0;
      std::printf("%10.0f %10.1f %12s %7.2f%% %14lld %12.2f\n", point.offered, point.achieved,
                  FormatDuration(point.median).c_str(), 100.0 * point.failure_rate,
                  static_cast<long long>(point.sim_events), events_per_sec / 1e6);
      if (point.sim_events == 0) {
        std::printf("!! no events processed at %s rps=%.0f\n", SystemName(system), rps);
        ok = false;
      }
      Json row = Json::MakeObject();
      row["system"] = SystemName(system);
      row["offered_rps"] = point.offered;
      row["achieved_rps"] = point.achieved;
      row["median_ns"] = point.median;
      row["failure_rate"] = point.failure_rate;
      row["sim_events"] = point.sim_events;
      row["sim_events_per_sec"] = events_per_sec;
      json.AddRow(std::move(row));
    }
  }
  const Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::printf("!! --json: %s\n", written.ToString().c_str());
    ok = false;
  }
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main(int argc, char** argv) {
  bool smoke = false;
  bool high_rps = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--high-rps") == 0) {
      high_rps = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--high-rps] [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  if (high_rps) {
    return quilt::bench::RunHighRps(smoke, json_path);
  }
  quilt::bench::RunVariant(/*async_fanout=*/false);
  quilt::bench::RunVariant(/*async_fanout=*/true);
  std::printf(
      "\nShape check (paper): CM cuts latency ~25-32%% but not throughput (OOM at 128MB;\n"
      "256MB extends it); Quilt cuts latency ~51-66%% and lifts throughput 2-13x.\n");
  return 0;
}
