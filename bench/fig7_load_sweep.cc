// Figures 7a/7b: median latency and throughput under varying offered load
// for the compose-post workflow (sync and async), comparing:
//   - Baseline: one container image per function (10 containers each);
//   - CM: container merge (WiseFuse-style internal API gateway) at the
//     standard 128 MB limit and with doubled memory (256 MB);
//   - Quilt: the whole workflow merged into one process.
//
// §7.3.2 methodology: fake DB calls, wrk2 constant-throughput load, every
// system gets the same container budget (110 containers of 2 vCPU).
// Expected shape: baseline saturates first and its median latency *drops*
// as load rises before saturation (Fission routing quirk); CM improves
// latency but OOM-kills at high load with 128 MB (the 256 MB variant
// extends it); Quilt improves latency the most and achieves several times
// the baseline's throughput without OOM.
#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"

namespace quilt {
namespace bench {
namespace {

struct Point {
  double offered = 0.0;
  double achieved = 0.0;
  int64_t median = 0;
  double failure_rate = 0.0;
  int64_t oom_kills = 0;
};

enum class System { kBaseline, kCm128, kCm256, kQuilt };

const char* SystemName(System system) {
  switch (system) {
    case System::kBaseline:
      return "baseline";
    case System::kCm128:
      return "CM (128MB)";
    case System::kCm256:
      return "CM (256MB)";
    case System::kQuilt:
      return "quilt";
  }
  return "?";
}

Point RunPoint(const WorkflowApp& app, System system, double rps) {
  Env env;
  Status status = env.controller.RegisterWorkflow(app);
  if (!status.ok()) {
    std::printf("!! register: %s\n", status.ToString().c_str());
    return {};
  }
  switch (system) {
    case System::kBaseline:
      break;
    case System::kCm128:
      status = env.controller.DeployContainerMerge(app, 128.0);
      break;
    case System::kCm256:
      status = env.controller.DeployContainerMerge(app, 256.0);
      break;
    case System::kQuilt: {
      Result<CallGraph> graph = app.ReferenceGraph();
      if (graph.ok()) {
        status = env.controller.DeploySolutionDirect(app, FullMergeSolution(*graph));
      } else {
        status = graph.status();
      }
      break;
    }
  }
  if (!status.ok()) {
    std::printf("!! deploy %s: %s\n", SystemName(system), status.ToString().c_str());
    return {};
  }

  const LoadResult load = RunOpenLoop(env, app.root_handle, rps, Seconds(10), Seconds(3));
  Point point;
  point.offered = rps;
  point.achieved = load.AchievedRps();
  point.median = load.latency.Median();
  point.failure_rate = load.FailureRate();
  const DeploymentStats* stats = env.platform.StatsFor(app.root_handle);
  point.oom_kills = stats != nullptr ? stats->oom_kills : 0;
  return point;
}

void RunVariant(bool async_fanout) {
  const WorkflowApp app = ComposePost(async_fanout);
  PrintHeader(StrCat("Figure 7a/7b (", async_fanout ? "async" : "sync",
                     "): compose-post latency & throughput vs offered load"));
  const std::vector<double> rates = {25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600};

  for (System system :
       {System::kBaseline, System::kCm128, System::kCm256, System::kQuilt}) {
    std::printf("\n-- %s --\n", SystemName(system));
    std::printf("%10s %10s %12s %8s %6s\n", "offered", "achieved", "median", "fail%", "oom");
    double peak = 0.0;
    for (double rps : rates) {
      const Point point = RunPoint(app, system, rps);
      peak = std::max(peak, point.achieved);
      std::printf("%10.0f %10.1f %12s %7.2f%% %6lld\n", point.offered, point.achieved,
                  FormatDuration(point.median).c_str(), 100.0 * point.failure_rate,
                  static_cast<long long>(point.oom_kills));
    }
    std::printf("peak throughput: %.1f rps\n", peak);
  }
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  quilt::bench::RunVariant(/*async_fanout=*/false);
  quilt::bench::RunVariant(/*async_fanout=*/true);
  std::printf(
      "\nShape check (paper): CM cuts latency ~25-32%% but not throughput (OOM at 128MB;\n"
      "256MB extends it); Quilt cuts latency ~51-66%% and lifts throughput 2-13x.\n");
  return 0;
}
