// Event-core microbenchmark: events/sec and heap allocations/event for the
// slab/4-ary-heap Simulation vs the pre-overhaul LegacyEventLoop
// (std::priority_queue of std::function).
//
// Two workloads, both with ~24-32-byte captures (the shape of real platform
// closures like `[this, ctx, respond]`, which exceed std::function's 16-byte
// inline buffer, so the legacy loop pays one heap closure per Schedule plus
// a copy out of the queue top per fire):
//
//  - "invoke-chain" (headline): K concurrent timers; each fire runs a
//    3-step zero-delay chain, the same-instant scheduling cascade of one
//    request through the platform (arrival -> route -> dispatch ->
//    complete). Chain events hit the queue's due-now FIFO ring; the legacy
//    loop pushes them through the full priority queue with allocations.
//  - "timer" (heap path): the same timers with no chain -- every event goes
//    through the 4-ary heap. Reported for transparency; the heap itself is
//    ~1.2-1.5x, the allocation-free cycle is where the big win is.
//
// Allocation accounting: this translation unit replaces global operator
// new/delete with counting wrappers, armed only inside the measured window
// (warmup lets vectors/slab/ring reach steady-state capacity first). The
// steady-state Simulation cycle must allocate exactly zero times on both
// workloads -- enforced, exit 1 otherwise, on both CMake presets.
//
// Flags:
//   --smoke           short run (CI): fewer events, looser speedup floor.
//   --json <path>     write machine-readable results (BENCH_*.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/legacy_event_loop.h"
#include "src/sim/simulation.h"

namespace {
// Armed only inside the measured window; the bench is single-threaded, so a
// plain counter is exact.
bool g_count_allocs = false;
long long g_allocs = 0;

void* CountedAlloc(std::size_t size) {
  if (g_count_allocs) {
    ++g_allocs;
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_count_allocs) {
    ++g_allocs;
  }
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  if (g_count_allocs) {
    ++g_allocs;
  }
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }

namespace quilt {
namespace bench {
namespace {

struct TimerState {
  int64_t remaining = 0;
  uint64_t checksum = 0;  // Defeats dead-code elimination of the callbacks.
};

// One same-instant hop of a request's control flow: fires "now", optionally
// scheduling the next hop. Capture (&loop, state, depth) = 24 bytes.
template <typename Loop>
void ChainHop(Loop& loop, TimerState* state, int depth) {
  loop.Schedule(0, [&loop, state, depth] {
    ++state->checksum;
    if (depth > 0) {
      ChainHop(loop, state, depth - 1);
    }
  });
}

// Re-arms a timer: each fire kicks off a zero-delay chain of `chain` hops
// and reschedules itself. Capture (&loop, state, period, chain packed with
// salt) = 32 bytes -- the platform-closure shape.
template <typename Loop>
void ArmTimer(Loop& loop, TimerState* state, SimDuration period, int chain) {
  loop.Schedule(period, [&loop, state, period, chain] {
    state->checksum += static_cast<uint64_t>(loop.now());
    if (chain > 0) {
      ChainHop(loop, state, chain - 1);
    }
    if (--state->remaining > 0) {
      ArmTimer(loop, state, period, chain);
    }
  });
}

struct SeriesResult {
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
  int64_t measured_events = 0;
  long long measured_allocs = 0;
  uint64_t checksum = 0;
};

// Drives `timers` concurrent timers (each firing a `chain`-hop zero-delay
// cascade) until every timer has fired timer_fires/timers times. The first
// warmup_fires timer rounds are untimed and uncounted so one-time growth
// (heap arrays, slab chunks, ring capacity, std::function cold paths)
// doesn't pollute the steady-state numbers.
template <typename Loop>
SeriesResult RunOnce(int timers, int64_t timer_fires, int64_t warmup_fires, int chain) {
  Loop loop;
  std::vector<TimerState> states(static_cast<size_t>(timers));
  const int64_t per_timer = timer_fires / timers;
  const int64_t events_per_fire = 1 + chain;
  for (int t = 0; t < timers; ++t) {
    states[static_cast<size_t>(t)].remaining = per_timer;
    // A handful of distinct periods, repeating across timers, so the queue
    // constantly resolves timestamp ties by insertion sequence.
    const SimDuration period = Microseconds(100 + 50 * (t % 8));
    ArmTimer(loop, &states[static_cast<size_t>(t)], period, chain);
  }

  // Warmup: run with the counter disarmed. Periods are all <= 550us, so
  // stepping the virtual clock in 10ms windows drains events in bounded
  // chunks without overshooting the budget by much.
  const int64_t warmup_events = warmup_fires * events_per_fire;
  SimTime deadline = 0;
  while (loop.events_processed() < warmup_events) {
    deadline += Milliseconds(10);
    loop.RunUntil(deadline);
  }

  const int64_t start_events = loop.events_processed();
  g_allocs = 0;
  g_count_allocs = true;
  const auto start = std::chrono::steady_clock::now();
  loop.Run();
  const auto stop = std::chrono::steady_clock::now();
  g_count_allocs = false;

  SeriesResult result;
  result.measured_events = loop.events_processed() - start_events;
  result.measured_allocs = g_allocs;
  const double seconds = std::chrono::duration<double>(stop - start).count();
  result.events_per_sec =
      seconds > 0.0 ? static_cast<double>(result.measured_events) / seconds : 0.0;
  result.allocs_per_event =
      result.measured_events > 0
          ? static_cast<double>(result.measured_allocs) /
                static_cast<double>(result.measured_events)
          : 0.0;
  for (const TimerState& state : states) {
    result.checksum ^= state.checksum;
  }
  return result;
}

// Best-of-R wall-clock (the CI box is a single shared vCPU; the minimum is
// the least contended run). Allocation counts are deterministic -- the
// worst observed count is kept so a single allocating run can't hide.
template <typename Loop>
SeriesResult RunSeries(int reps, int timers, int64_t timer_fires, int64_t warmup_fires,
                       int chain) {
  SeriesResult best;
  for (int r = 0; r < reps; ++r) {
    SeriesResult run = RunOnce<Loop>(timers, timer_fires, warmup_fires, chain);
    if (r == 0) {
      best = run;
    } else {
      best.measured_allocs = std::max(best.measured_allocs, run.measured_allocs);
      best.allocs_per_event = std::max(best.allocs_per_event, run.allocs_per_event);
      if (run.events_per_sec > best.events_per_sec) {
        best.events_per_sec = run.events_per_sec;
      }
    }
  }
  return best;
}

void PrintSeries(const char* name, const SeriesResult& result) {
  std::printf("  %-22s %9.2f M events/s   %8.3f allocs/event   (%lld events)\n", name,
              result.events_per_sec / 1e6, result.allocs_per_event,
              static_cast<long long>(result.measured_events));
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main(int argc, char** argv) {
  using quilt::bench::BenchJson;
  using quilt::bench::PrintHeader;
  using quilt::bench::RunSeries;
  using quilt::bench::SeriesResult;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  const int timers = 64;
  const int reps = smoke ? 2 : 3;
  const int64_t timer_fires = smoke ? 200'000 : 1'000'000;
  const int64_t warmup_fires = smoke ? 20'000 : 50'000;
  // Floors are deliberately below the speedups this bench shows on an idle
  // machine (~3.5x invoke-chain, ~1.4x timer; recorded in README.md):
  // wall-clock ratios are noisy under sanitizers and on loaded CI boxes.
  // The allocation check is exact and not relaxed anywhere.
  const double chain_floor = smoke ? 1.5 : 2.0;

  PrintHeader("micro_eventloop: slab/4-ary-heap Simulation vs legacy priority_queue loop");
  std::printf("timers=%d timer_fires=%lld warmup_fires=%lld reps=%d (%s)\n", timers,
              static_cast<long long>(timer_fires), static_cast<long long>(warmup_fires), reps,
              smoke ? "smoke" : "full");

  BenchJson json("micro_eventloop");
  json.SetConfig("smoke", smoke);
  json.SetConfig("timers", static_cast<int64_t>(timers));
  json.SetConfig("timer_fires", timer_fires);
  json.SetConfig("warmup_fires", warmup_fires);
  json.SetConfig("reps", static_cast<int64_t>(reps));

  struct Workload {
    const char* name;
    int chain;
    bool headline;
  };
  const Workload workloads[] = {
      {"invoke-chain", 3, true},  // 1 timer fire + 3 same-instant hops.
      {"timer", 0, false},        // Pure heap path.
  };

  bool ok = true;
  double headline_speedup = 0.0;
  for (const Workload& workload : workloads) {
    std::printf("\n[%s] (%d-hop zero-delay cascade per fire)\n", workload.name,
                workload.chain);
    const SeriesResult legacy = RunSeries<quilt::LegacyEventLoop>(
        reps, timers, timer_fires, warmup_fires, workload.chain);
    const SeriesResult current =
        RunSeries<quilt::Simulation>(reps, timers, timer_fires, warmup_fires, workload.chain);
    quilt::bench::PrintSeries("legacy (pre-PR loop)", legacy);
    quilt::bench::PrintSeries("simulation (slab)", current);

    const double speedup =
        legacy.events_per_sec > 0.0 ? current.events_per_sec / legacy.events_per_sec : 0.0;
    std::printf("  speedup: %.2fx\n", speedup);
    if (workload.headline) {
      headline_speedup = speedup;
    }

    // Same virtual workload -> both loops must run the same callbacks.
    if (legacy.checksum != current.checksum ||
        legacy.measured_events != current.measured_events) {
      std::printf("  FAIL: loops diverged (events %lld vs %lld)\n",
                  static_cast<long long>(legacy.measured_events),
                  static_cast<long long>(current.measured_events));
      ok = false;
    }
    // The acceptance bar: the steady-state Schedule/fire cycle is
    // allocation-free. Hard failure -- any alloc here is a regression in
    // EventFn inlining, slab recycling, or ring reuse.
    if (current.measured_allocs != 0) {
      std::printf("  FAIL: simulation steady state performed %lld heap allocations (want 0)\n",
                  current.measured_allocs);
      ok = false;
    }
    if (legacy.measured_allocs == 0) {
      std::printf("  FAIL: legacy baseline reported 0 allocations -- counter hooks inert?\n");
      ok = false;
    }

    for (const auto& [series, result] :
         {std::pair<const char*, const SeriesResult&>{"legacy", legacy},
          std::pair<const char*, const SeriesResult&>{"simulation", current}}) {
      quilt::Json row = quilt::Json::MakeObject();
      row["workload"] = workload.name;
      row["series"] = series;
      row["events_per_sec"] = result.events_per_sec;
      row["allocs_per_event"] = result.allocs_per_event;
      row["measured_events"] = result.measured_events;
      row["measured_allocs"] = static_cast<int64_t>(result.measured_allocs);
      json.AddRow(std::move(row));
    }
    quilt::Json summary = quilt::Json::MakeObject();
    summary["workload"] = workload.name;
    summary["series"] = "speedup";
    summary["speedup"] = speedup;
    json.AddRow(std::move(summary));
  }

  if (headline_speedup < chain_floor) {
    std::printf("\nFAIL: invoke-chain speedup %.2fx below %.1fx floor\n", headline_speedup,
                chain_floor);
    ok = false;
  }

  const quilt::Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::printf("!! --json: %s\n", written.ToString().c_str());
    ok = false;
  }
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
