// Autopilot closed-loop adaptation (§4.9): the control plane re-merges on a
// workload shift and rolls back on an OOM storm with zero manual calls.
//
// Scenario A (shift): the fan-out workflow runs a phased open loop -- a
// steady phase profiled and merged by the autopilot, then a payload shift
// that blows past the deployed conditional-invocation budgets. A drift/SLO
// detector trips, the autopilot re-decides, stages the new plan as a
// weighted canary and promotes it. Expected: >= 2 promotions, the second
// driven by a detector, final state "monitoring".
//
// Scenario B (storm): steady load with a fault-injected OOM-kill window
// that opens after the merge is promoted. Expected: an automatic rollback
// (detector "oom-kill") within a bounded number of control ticks of the
// storm starting.
//
// Both scenarios assert determinism: the serialized AdaptationRecord
// sequence is byte-identical across repeated runs at the same seed and
// across decision_threads = 1 / 2 / 8 (records carry no wall-clock fields).
//
// Flags:
//   --smoke           short runs (CI); same pipeline, fewer thread configs.
//   --json <path>     write machine-readable results (name, config, rows).
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"
#include "src/autopilot/autopilot.h"

namespace quilt {
namespace bench {
namespace {

constexpr char kRoot[] = "fan-out-root";

struct ScenarioRun {
  std::vector<AdaptationRecord> records;
  std::string serialized;
  std::string final_state;
};

std::string SerializeRecords(const std::vector<AdaptationRecord>& records) {
  std::string out;
  for (const AdaptationRecord& record : records) {
    out += AdaptationRecordLine(record);
    out += '\n';
  }
  return out;
}

int64_t CountAction(const ScenarioRun& run, const std::string& action) {
  int64_t count = 0;
  for (const AdaptationRecord& record : run.records) {
    count += record.action == action ? 1 : 0;
  }
  return count;
}

ControllerOptions MakeControllerOptions(int threads) {
  ControllerOptions options;
  options.container_memory_limit_mb = 256.0;
  options.decision_threads = threads;
  return options;
}

AutopilotOptions MakePilotOptions() {
  AutopilotOptions options;
  options.tick_interval = Seconds(5);
  options.min_window_traces = 10;
  options.canary_min_traces = 8;
  options.canary_fraction = 0.3;
  return options;
}

Json NumPayload(int num) {
  Json payload = Json::MakeObject();
  payload["num"] = num;
  return payload;
}

// Scenario A: steady traffic (num=2), then the per-request fan-out shifts to
// num=4 -- over the deployed budgets (so fallback invocations surface at the
// ingress) but still worth merging, so a detector re-triggers the merge
// pipeline and the refreshed plan canary-promotes.
ScenarioRun RunShiftScenario(bool smoke, int threads) {
  Env env(MakeControllerOptions(threads));
  Status registered = env.controller.RegisterWorkflow(FanOutApp(4));
  if (!registered.ok()) {
    std::printf("!! register: %s\n", registered.ToString().c_str());
    return {};
  }
  Autopilot pilot(&env.sim, &env.controller, MakePilotOptions());
  (void)pilot.Enroll(kRoot);
  pilot.Start();

  OpenLoopGenerator generator;
  OpenLoopGenerator::PhasedOptions load;
  load.warmup = Seconds(2);
  load.seed = 7;
  LoadPhase steady;
  steady.name = "steady";
  steady.rps = 8.0;
  steady.duration = smoke ? Seconds(45) : Seconds(75);
  steady.payload = NumPayload(2);
  LoadPhase shifted = steady;
  shifted.name = "shifted";
  shifted.duration = smoke ? Seconds(60) : Seconds(90);
  shifted.payload = NumPayload(4);
  load.phases = {steady, shifted};
  generator.RunPhased(&env.sim, &env.platform, kRoot, load);
  pilot.Stop();

  ScenarioRun run;
  run.records = env.controller.metrics_store()->adaptations();
  run.serialized = SerializeRecords(run.records);
  Result<WorkflowState> state = pilot.StateOf(kRoot);
  run.final_state = state.ok() ? WorkflowStateName(*state) : "unknown";
  return run;
}

// Scenario B: steady traffic with a fault-injection window that OOM-kills
// every dispatch to the merged root for a bounded period after promotion.
ScenarioRun RunOomScenario(bool smoke, int threads, SimTime* storm_start,
                           SimDuration* tick_interval) {
  PlatformConfig config;
  FaultRule rule;
  rule.kind = FaultKind::kOomKill;
  rule.deployment = kRoot;
  rule.probability = 1.0;
  rule.window_start = smoke ? Seconds(50) : Seconds(70);
  rule.window_end = rule.window_start + Seconds(10);
  rule.max_faults = 6;
  config.fault_plan.seed = 11;
  config.fault_plan.rules = {rule};
  *storm_start = rule.window_start;

  Env env(MakeControllerOptions(threads), config);
  Status registered = env.controller.RegisterWorkflow(FanOutApp(4));
  if (!registered.ok()) {
    std::printf("!! register: %s\n", registered.ToString().c_str());
    return {};
  }
  const AutopilotOptions pilot_options = MakePilotOptions();
  *tick_interval = pilot_options.tick_interval;
  Autopilot pilot(&env.sim, &env.controller, pilot_options);
  (void)pilot.Enroll(kRoot);
  pilot.Start();

  OpenLoopGenerator generator;
  OpenLoopGenerator::PhasedOptions load;
  load.warmup = Seconds(2);
  load.seed = 7;
  LoadPhase steady;
  steady.name = "steady";
  steady.rps = 8.0;
  steady.duration = rule.window_end - Seconds(2) + Seconds(25);  // Past the storm.
  steady.payload = NumPayload(2);
  load.phases = {steady};
  generator.RunPhased(&env.sim, &env.platform, kRoot, load);
  pilot.Stop();

  ScenarioRun run;
  run.records = env.controller.metrics_store()->adaptations();
  run.serialized = SerializeRecords(run.records);
  Result<WorkflowState> state = pilot.StateOf(kRoot);
  run.final_state = state.ok() ? WorkflowStateName(*state) : "unknown";
  return run;
}

void PrintRecords(const ScenarioRun& run) {
  for (const AdaptationRecord& record : run.records) {
    std::printf("  %s\n", AdaptationRecordLine(record).c_str());
  }
  std::printf("  final state: %s\n", run.final_state.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main(int argc, char** argv) {
  using namespace quilt;
  using namespace quilt::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  PrintHeader(
      "Autopilot adaptation: canary re-merge on workload shift,\n"
      "automatic rollback on an injected OOM storm (zero manual calls)");

  const std::vector<int> thread_configs = smoke ? std::vector<int>{1, 2}
                                                : std::vector<int>{1, 2, 8};
  BenchJson json("fig_autopilot_adaptation");
  json.SetConfig("smoke", smoke);
  json.SetConfig("thread_configs", static_cast<int64_t>(thread_configs.size()));
  bool ok = true;

  // --- Scenario A at every decision-thread width, plus a repeat at width 1.
  std::printf("\n[scenario A] workload shift -> detector-driven canary re-merge\n");
  ScenarioRun reference = RunShiftScenario(smoke, thread_configs[0]);
  PrintRecords(reference);

  const int64_t promotes = CountAction(reference, "promote");
  bool detector_driven = false;
  for (const AdaptationRecord& record : reference.records) {
    if (record.action == "decide" && !record.detector.empty()) {
      detector_driven = true;
    }
  }
  if (promotes < 2) {
    std::printf("!! scenario A: expected >= 2 promotions, saw %lld\n",
                static_cast<long long>(promotes));
    ok = false;
  }
  if (!detector_driven) {
    std::printf("!! scenario A: no detector-driven re-decision recorded\n");
    ok = false;
  }
  if (reference.final_state != "monitoring") {
    std::printf("!! scenario A: final state %s (want monitoring)\n",
                reference.final_state.c_str());
    ok = false;
  }

  const ScenarioRun repeat = RunShiftScenario(smoke, thread_configs[0]);
  if (repeat.serialized != reference.serialized) {
    std::printf("!! scenario A: record sequence differs across repeated runs\n");
    ok = false;
  }
  for (size_t i = 1; i < thread_configs.size(); ++i) {
    const ScenarioRun threaded = RunShiftScenario(smoke, thread_configs[i]);
    const bool identical = threaded.serialized == reference.serialized;
    std::printf("  decision_threads=%d: %lld records, %s\n", thread_configs[i],
                static_cast<long long>(threaded.records.size()),
                identical ? "byte-identical" : "DIVERGED");
    if (!identical) {
      ok = false;
    }
  }

  Json row_a = Json::MakeObject();
  row_a["scenario"] = "workload-shift";
  row_a["records"] = static_cast<int64_t>(reference.records.size());
  row_a["promotes"] = promotes;
  row_a["detector_driven_redecide"] = detector_driven;
  row_a["final_state"] = reference.final_state;
  json.AddRow(std::move(row_a));

  // --- Scenario B: OOM storm -> bounded-time automatic rollback.
  std::printf("\n[scenario B] injected OOM storm -> automatic rollback\n");
  SimTime storm_start = 0;
  SimDuration tick_interval = 0;
  const ScenarioRun storm = RunOomScenario(smoke, thread_configs[0], &storm_start,
                                           &tick_interval);
  PrintRecords(storm);

  const AdaptationRecord* rollback = nullptr;
  bool promoted_before_storm = false;
  for (const AdaptationRecord& record : storm.records) {
    if (record.action == "promote" && record.virtual_time < storm_start) {
      promoted_before_storm = true;
    }
    if (rollback == nullptr && record.action == "rollback" &&
        record.detector == "oom-kill") {
      rollback = &record;
    }
  }
  if (!promoted_before_storm) {
    std::printf("!! scenario B: no promotion before the storm window\n");
    ok = false;
  }
  if (rollback == nullptr) {
    std::printf("!! scenario B: no oom-kill rollback recorded\n");
    ok = false;
  } else {
    // Bounded reaction: the rollback lands within 3 control ticks of the
    // storm opening.
    const SimTime bound = storm_start + 3 * tick_interval;
    if (rollback->virtual_time > bound) {
      std::printf("!! scenario B: rollback at t=%lld ns, after the bound %lld ns\n",
                  static_cast<long long>(rollback->virtual_time),
                  static_cast<long long>(bound));
      ok = false;
    } else {
      std::printf("  rollback within %.0f s of the storm opening\n",
                  ToSeconds(rollback->virtual_time - storm_start));
    }
  }

  SimTime repeat_start = 0;
  SimDuration repeat_tick = 0;
  const ScenarioRun storm_repeat =
      RunOomScenario(smoke, thread_configs[0], &repeat_start, &repeat_tick);
  if (storm_repeat.serialized != storm.serialized) {
    std::printf("!! scenario B: record sequence differs across repeated runs\n");
    ok = false;
  }
  for (size_t i = 1; i < thread_configs.size(); ++i) {
    SimTime start = 0;
    SimDuration tick = 0;
    const ScenarioRun threaded = RunOomScenario(smoke, thread_configs[i], &start, &tick);
    const bool identical = threaded.serialized == storm.serialized;
    std::printf("  decision_threads=%d: %lld records, %s\n", thread_configs[i],
                static_cast<long long>(threaded.records.size()),
                identical ? "byte-identical" : "DIVERGED");
    if (!identical) {
      ok = false;
    }
  }

  Json row_b = Json::MakeObject();
  row_b["scenario"] = "oom-storm";
  row_b["records"] = static_cast<int64_t>(storm.records.size());
  row_b["promoted_before_storm"] = promoted_before_storm;
  row_b["rolled_back"] = rollback != nullptr;
  row_b["final_state"] = storm.final_state;
  json.AddRow(std::move(row_b));

  const Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::printf("!! --json: %s\n", written.ToString().c_str());
    ok = false;
  }
  std::printf("\n%s\n", ok ? "all autopilot adaptation checks passed"
                           : "AUTOPILOT ADAPTATION CHECKS FAILED");
  return ok ? 0 : 1;
}
