// Figure 7c: effect of resource limits on the modified nearby-cinema
// workflow (§7.4.1): 9 functions, six CPU-heavy get-nearby-points workers,
// containers limited to 1.6 vCPU / 320 MB.
//
//   - Baseline: 9 deployments x 10 containers (90 total);
//   - Quilt (merge all): one binary on 90 containers -- its per-request
//     parallel CPU demand exceeds the container quota, so it is throttled;
//   - Quilt (optimal split): the decision algorithm's 2-binary grouping.
//
// Expected shape: merge-all has the best low-load latency but loses
// throughput to throttling (paper: -11.64% vs baseline); the optimal split
// keeps most of the latency win and beats the baseline's throughput
// (paper: +50.75%).
#include "bench/bench_util.h"
#include "src/apps/deathstarbench.h"
#include "src/platform/cluster.h"

namespace quilt {
namespace bench {
namespace {

enum class System { kBaseline, kMergeAll, kOptimalSplit };

const char* SystemName(System system) {
  switch (system) {
    case System::kBaseline:
      return "baseline";
    case System::kMergeAll:
      return "quilt (merge all)";
    case System::kOptimalSplit:
      return "quilt (optimal split)";
  }
  return "?";
}

ControllerOptions Fig7cOptions() {
  ControllerOptions options;
  options.container_cpu_limit = 1.6;
  options.container_memory_limit_mb = 320.0;
  options.max_scale = 10;
  return options;
}

// GNP requests/responses carry large point sets (the workers filter 300K
// points, §7.4.1), so the HTTP serialization work per remote invocation is
// an order of magnitude above the tiny-JSON default.
PlatformConfig Fig7cPlatform() {
  PlatformConfig config;
  config.runtime.invoke_cpu_ms = 0.5;
  config.runtime.handler_cpu_ms = 1.2;
  // Megabyte-scale messages also take real wire time on the 1 Gbps fabric.
  config.serialize_latency = Microseconds(2500);
  return config;
}

MergeSolution OptimalSplit(const CallGraph& graph) {
  MergeSolution split;
  MergeGroup g1;
  g1.root = graph.FindNode("nearby-cinema-mod");
  g1.members = {g1.root, graph.FindNode("nearby-agg-1"), graph.FindNode("gnp-1"),
                graph.FindNode("gnp-2"), graph.FindNode("gnp-3")};
  MergeGroup g2;
  g2.root = graph.FindNode("nearby-agg-2");
  g2.members = {g2.root, graph.FindNode("gnp-4"), graph.FindNode("gnp-5"),
                graph.FindNode("gnp-6")};
  split.groups = {g1, g2};
  return split;
}

struct Point {
  double achieved = 0.0;
  int64_t median = 0;
  double failure_rate = 0.0;
};

Point RunPoint(System system, double rps) {
  const WorkflowApp app = ModifiedNearbyCinema();
  Env env(Fig7cOptions(), Fig7cPlatform());
  Status status = env.controller.RegisterWorkflow(app);
  Result<CallGraph> graph = app.ReferenceGraph();
  if (!graph.ok() || !status.ok()) {
    std::printf("!! setup failed\n");
    return {};
  }
  switch (system) {
    case System::kBaseline:
      break;
    case System::kMergeAll:
      status = env.controller.DeploySolutionDirect(app, FullMergeSolution(*graph));
      break;
    case System::kOptimalSplit:
      status = env.controller.DeploySolutionDirect(app, OptimalSplit(*graph));
      break;
  }
  if (!status.ok()) {
    std::printf("!! deploy %s: %s\n", SystemName(system), status.ToString().c_str());
    return {};
  }
  const LoadResult load = RunOpenLoop(env, app.root_handle, rps, Seconds(10), Seconds(3));
  return Point{load.AchievedRps(), load.latency.Median(), load.FailureRate()};
}

// Live counterpart of the offline PlaceContainers prediction: warm-spawns
// the container mix through a finite-node Platform (shared PickNode core)
// and reports observed node count + stranding.
struct LiveStranding {
  int nodes_used = 0;
  double stranded_cpu_fraction = 0.0;
};

LiveStranding RunLiveMix(const std::vector<ContainerRequest>& mix, const WorkerSpec& worker) {
  PlatformConfig config;
  config.node_cpu = worker.cpu;
  config.node_memory_mb = worker.memory_mb;
  config.max_nodes = 1000;
  Simulation sim;
  Platform platform(&sim, config);
  // Descending container size, like the offline first-fit-decreasing walk.
  std::vector<ContainerRequest> sorted = mix;
  std::sort(sorted.begin(), sorted.end(), [](const ContainerRequest& a,
                                             const ContainerRequest& b) {
    if (a.cpu != b.cpu) {
      return a.cpu > b.cpu;
    }
    return a.memory_mb > b.memory_mb;
  });
  int index = 0;
  for (const ContainerRequest& request : sorted) {
    DeploymentSpec spec;
    spec.handle = StrCat("mix-", index++);
    spec.max_scale = request.count;
    spec.warm_containers = request.count;
    spec.container.cpu_limit = request.cpu;
    spec.container.memory_limit_mb = request.memory_mb;
    spec.container.base_memory_mb = 1.0;
    auto behavior = std::make_shared<FunctionBehavior>();
    behavior->handle = spec.handle;
    behavior->steps = {ComputeStep{0.1}};
    spec.behavior.single = std::move(behavior);
    if (!platform.Deploy(std::move(spec)).ok()) {
      return {};
    }
  }
  sim.Run();
  LiveStranding live;
  for (const NodeStats& node : platform.placement().Snapshot()) {
    if (node.containers > 0) {
      ++live.nodes_used;
    }
  }
  live.stranded_cpu_fraction = platform.placement().StrandedCpuFraction();
  return live;
}

}  // namespace
}  // namespace bench
}  // namespace quilt

int main() {
  using namespace quilt;
  using namespace quilt::bench;

  PrintHeader(
      "Figure 7c: modified nearby-cinema under 1.6 vCPU / 320 MB containers\n"
      "(9 functions; 90 containers total for every system)");

  const std::vector<double> rates = {10, 50, 200, 800, 2000, 4000, 6000, 8000, 10000};
  struct Summary {
    int64_t low_load_median = 0;
    double peak = 0.0;
  };
  std::vector<std::pair<const char*, Summary>> summaries;

  for (System system : {System::kBaseline, System::kMergeAll, System::kOptimalSplit}) {
    std::printf("\n-- %s --\n", SystemName(system));
    std::printf("%10s %10s %12s %8s\n", "offered", "achieved", "median", "fail%");
    Summary summary;
    for (double rps : rates) {
      const Point point = RunPoint(system, rps);
      if (rps == rates.front()) {
        summary.low_load_median = point.median;
      }
      summary.peak = std::max(summary.peak, point.achieved);
      std::printf("%10.0f %10.1f %12s %7.2f%%\n", rps, point.achieved,
                  FormatDuration(point.median).c_str(), 100.0 * point.failure_rate);
    }
    summaries.push_back({SystemName(system), summary});
    std::printf("low-load median %s, peak throughput %.1f rps\n",
                FormatDuration(summary.low_load_median).c_str(), summary.peak);
  }

  std::printf("\n-- summary (paper shape: merge-all best latency, worst throughput;\n");
  std::printf("   optimal split close on latency and highest throughput) --\n");
  const Summary& base = summaries[0].second;
  for (const auto& [name, s] : summaries) {
    std::printf("%-22s low-load median %10s (%+6.1f%% vs baseline)   peak %8.1f rps "
                "(%+6.1f%%)\n",
                name, FormatDuration(s.low_load_median).c_str(),
                -ImprovementPct(base.low_load_median, s.low_load_median), s.peak,
                100.0 * (s.peak / base.peak - 1.0));
  }

  // --- Container economy (§4): what the three fleets cost in worker nodes.
  // Fixed 1.6-vCPU limits pack densely; the naive alternative -- merging
  // everything and raising the limits proportionally (9 x 1.6 = 14.4 vCPU)
  // -- strands a third of every 16-vCPU worker. Each mix is packed twice:
  // offline (PlaceContainers) and live (finite-node Platform); both route
  // through the shared PickNode core and must agree.
  std::printf("\n-- offline-predicted vs live-observed stranding (16-vCPU workers) --\n");
  const WorkerSpec worker{16.0, 32768.0};
  const std::vector<std::pair<const char*, std::vector<ContainerRequest>>> mixes = {
      {"baseline (90 x 1.6 vCPU)", {{"fn", 1.6, 320.0, 90}}},
      {"quilt optimal split (90 x 1.6 vCPU)", {{"grp", 1.6, 320.0, 90}}},
      {"merge all, raised limits (10 x 14.4 vCPU)", {{"all", 14.4, 2880.0, 10}}},
  };
  std::printf("%-44s | %8s %8s | %9s %9s\n", "fleet", "wrk/off", "wrk/live", "strd/off",
              "strd/live");
  bool agree = true;
  for (const auto& [name, mix] : mixes) {
    const PlacementResult offline = PlaceContainers(mix, worker, /*max_workers=*/1000);
    const LiveStranding live = RunLiveMix(mix, worker);
    const double offline_stranded = offline.StrandedCpuFraction(worker);
    if (std::abs(live.stranded_cpu_fraction - offline_stranded) > 0.05 ||
        live.nodes_used != offline.workers_used) {
      agree = false;
    }
    std::printf("%-44s | %8d %8d | %8.1f%% %8.1f%%\n", name, offline.workers_used,
                live.nodes_used, 100.0 * offline_stranded,
                100.0 * live.stranded_cpu_fraction);
  }
  if (!agree) {
    std::printf("FAIL: live placement drifted from the offline prediction.\n");
    return 1;
  }
  std::printf("(live placement reproduces the offline prediction on every fleet)\n");
  return 0;
}
